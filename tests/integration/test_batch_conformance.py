"""Non-reference-core conformance: bit-identical to the seed on every path.

The batched core (:mod:`repro.core.batch`) advances locally-resolvable
accesses in bulk and falls back to scalar stepping at exactly the first
non-local access; the compiled core (:mod:`repro.core.compiled`) keeps all
cache state in flat SoA containers and steps whole runs through per-scheme
kernels.  Both must match the seed loop kept in :mod:`repro.core.reference`
term for term.  This suite holds that contract at the
``SimResult.to_dict()`` level — full dict equality, floats with ``==`` —
across all six schemes, and on the edge paths where the fast paths degrade
or interact with other subsystems:

* ``l2s`` under a contention-modelled bus (the batched core must
  degenerate to scalar stepping, the compiled kernels model the bus
  occupancy in-kernel — both still bit-identical);
* ``cc`` under contention + banked DRAM with ``check_invariants=True``
  on the batched side (the occupancy models must be untouched by bulk
  consumption);
* ``snug`` with an attached :class:`OnlineDemandMonitor` (the observed
  reference stream must be the same stream, latch for latch; the
  compiled core falls back to its interpreted driver here);
* the budget-exhausted :class:`SimulationError` (same enriched per-core
  progress message from every production loop);
* CLI stores written under ``--sim-core batch`` / ``--sim-core compiled``
  vs ``--sim-core reference`` (byte-identical records, same manifest —
  the store-level face of the contract).

The compiled core's kernel *tiers* (Numba JIT / native C / interpreted) are
each bit-identical as well; the interpreted tier is pinned by
``TestInterpretedFallback`` via subprocesses with the ``REPRO_NO_NUMBA`` /
``REPRO_NO_CKERNEL`` knobs set.
"""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.common.config import scaled_config
from repro.common.errors import SimulationError
from repro.core.batch import BatchCmpSystem
from repro.core.cmp import CmpSystem
from repro.core.compiled import CompiledCmpSystem
from repro.core.reference import ReferenceCmpSystem
from repro.schemes.factory import SCHEMES, make_scheme
from repro.workloads.mixes import build_mix_traces, get_mix

ALL_SCHEMES = sorted(SCHEMES)

#: The production loops held to the conformance contract (the fast scalar
#: loop rides along in the all-scheme sweep below).
PRODUCTION_CORES = [BatchCmpSystem, CompiledCmpSystem]


def build(config_mut=None, *, scale="tiny", n_accesses=3_000):
    cfg = scaled_config(scale, seed=7)
    if config_mut is not None:
        cfg = config_mut(cfg)
    traces = build_mix_traces(get_mix("c4_0"), cfg.l2.num_sets, n_accesses, seed=0)
    return cfg, traces


def run_core(core_cls, cfg, scheme_name, traces, target, warmup, **core_kwargs):
    scheme = make_scheme(scheme_name, cfg)
    system = core_cls(cfg, scheme, list(traces), **core_kwargs)
    return system.run(target, warmup_instructions=warmup).to_dict()


class TestSchemeEquivalence:
    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_batch_matches_reference_tiny(self, scheme_name):
        cfg, traces = build()
        ref = run_core(ReferenceCmpSystem, cfg, scheme_name, traces, 30_000, 5_000)
        # check_invariants asserts around every bulk commit that the
        # occupancy models (bus, DRAM, write buffers) were not advanced.
        batch = run_core(
            BatchCmpSystem, cfg, scheme_name, traces, 30_000, 5_000,
            check_invariants=True,
        )
        fast = run_core(CmpSystem, cfg, scheme_name, traces, 30_000, 5_000)
        compiled = run_core(
            CompiledCmpSystem, cfg, scheme_name, traces, 30_000, 5_000
        )
        assert batch == ref
        assert fast == ref
        assert compiled == ref

    @pytest.mark.parametrize("core_cls", PRODUCTION_CORES)
    @pytest.mark.parametrize("scheme_name", ["l2s", "snug"])
    def test_matches_reference_small(self, core_cls, scheme_name):
        # Small scale exercises deeper runs (longer quiescent stretches,
        # more wraps); l2s covers the ordered-merge commit and the compiled
        # bank-routed probe, snug the stage-horizon clamping and the
        # compiled stage/shadow/latch machinery.
        cfg, traces = build(scale="small", n_accesses=4_000)
        ref = run_core(ReferenceCmpSystem, cfg, scheme_name, traces, 30_000, 5_000)
        out = run_core(core_cls, cfg, scheme_name, traces, 30_000, 5_000)
        assert out == ref


class TestEdgePaths:
    @pytest.mark.parametrize("core_cls", PRODUCTION_CORES)
    def test_l2s_contention(self, core_cls):
        cfg, traces = build(
            lambda c: dataclasses.replace(
                c, bus=dataclasses.replace(c.bus, model_contention=True)
            )
        )
        assert not make_scheme("l2s", cfg).bulk_supported
        ref = run_core(ReferenceCmpSystem, cfg, "l2s", traces, 20_000, 2_000)
        out = run_core(core_cls, cfg, "l2s", traces, 20_000, 2_000)
        assert out == ref

    @pytest.mark.parametrize("core_cls", PRODUCTION_CORES)
    def test_cc_contention_banked_dram(self, core_cls):
        cfg, traces = build(
            lambda c: dataclasses.replace(
                c,
                bus=dataclasses.replace(c.bus, model_contention=True),
                dram=dataclasses.replace(c.dram, model_banks=True),
            )
        )
        # check_invariants asserts around every bulk commit that the
        # occupancy models (bus, DRAM, write buffers) were not advanced;
        # the compiled core has no bulk commits to instrument.
        kwargs = {"check_invariants": True} if core_cls is BatchCmpSystem else {}
        ref = run_core(ReferenceCmpSystem, cfg, "cc", traces, 20_000, 2_000)
        out = run_core(core_cls, cfg, "cc", traces, 20_000, 2_000, **kwargs)
        assert out == ref

    @pytest.mark.parametrize("core_cls", PRODUCTION_CORES)
    def test_snug_online_monitor_sees_identical_stream(self, core_cls):
        from repro.schemes.snug import OnlineDemandMonitor

        cfg, traces = build()
        results, monitors = [], []
        for cls in (ReferenceCmpSystem, core_cls):
            scheme = make_scheme("snug", cfg)
            scheme.attach_monitor(
                OnlineDemandMonitor.from_config(cfg, chunk_accesses=512)
            )
            system = cls(cfg, scheme, list(traces))
            results.append(system.run(20_000, warmup_instructions=2_000).to_dict())
            monitors.append(scheme.monitor)
        assert results[0] == results[1]
        assert monitors[0].latches == monitors[1].latches

    def test_cc_fractional_spill_rng_stream(self):
        # spill_probability=0.35 draws the spill coin per candidate; the
        # compiled C kernel consumes those draws from a prefetched ring
        # buffer that must replay the scalar draw sequence exactly.
        cfg, traces = build(
            lambda c: dataclasses.replace(
                c, cc=dataclasses.replace(c.cc, spill_probability=0.35)
            )
        )
        ref = run_core(ReferenceCmpSystem, cfg, "cc", traces, 30_000, 5_000)
        compiled = run_core(CompiledCmpSystem, cfg, "cc", traces, 30_000, 5_000)
        assert compiled == ref

    def test_budget_exhausted_message_identical(self):
        cfg, traces = build()
        messages = []
        for core_cls in (CmpSystem, BatchCmpSystem, CompiledCmpSystem):
            scheme = make_scheme("l2p", cfg)
            with pytest.raises(SimulationError) as exc_info:
                core_cls(cfg, scheme, list(traces)).run(200_000, max_events=5_000)
            messages.append(str(exc_info.value))
        assert "event budget exhausted (5000)" in messages[0]
        assert "core 0:" in messages[0]  # enriched per-core progress
        assert len(set(messages)) == 1


class TestCliStoreConformance:
    @pytest.mark.parametrize("core", ["batch", "compiled"])
    def test_sim_core_stores_byte_identical(self, tmp_path, core):
        """`--sim-core batch`/`compiled` and `--sim-core reference` persist
        byte-identical per-task records under one manifest."""
        from repro.cli import main
        from repro.engine.store import ResultStore
        from repro.scenario import preset_path

        a, b = tmp_path / core, tmp_path / "reference"
        for core, store in ((core, a), ("reference", b)):
            assert main(["scenario", "run", str(preset_path("smoke-tiny")),
                         "--jobs", "0", "--sim-core", core,
                         "--store", str(store)]) == 0
        with ResultStore(a) as store_a, ResultStore(b) as store_b:
            ids = store_a.completed_ids()
            assert ids == store_b.completed_ids() and ids
            for task_id in sorted(ids):
                assert store_a.payload_bytes(task_id) == store_b.payload_bytes(
                    task_id
                )
        assert (a / "manifest.json").read_bytes() == (
            b / "manifest.json"
        ).read_bytes()

    def test_store_resumes_across_sim_cores(self, tmp_path):
        """A store written under one stepping loop resumes under another:
        sim_core is not part of the experiment identity."""
        from repro.cli import main
        from repro.scenario import preset_path

        store = tmp_path / "store"
        assert main(["scenario", "run", str(preset_path("smoke-tiny")),
                     "--jobs", "0", "--sim-core", "compiled",
                     "--store", str(store)]) == 0
        assert main(["scenario", "run", str(preset_path("smoke-tiny")),
                     "--jobs", "0", "--sim-core", "fast",
                     "--store", str(store), "--resume"]) == 0


#: Runs the five kernel schemes under the compiled core and dumps
#: ``{"mode": kernel_mode(), "results": {scheme: to_dict()}}`` as JSON —
#: executed in a subprocess so the ``REPRO_NO_NUMBA``/``REPRO_NO_CKERNEL``
#: knobs (read at import / first build) take effect.
_CHILD_SCRIPT = """\
import json, sys
from repro.common.config import scaled_config
from repro.core.compiled import CompiledCmpSystem, kernel_mode
from repro.schemes.factory import make_scheme
from repro.workloads.mixes import build_mix_traces, get_mix

cfg = scaled_config("tiny", seed=7)
traces = build_mix_traces(get_mix("c4_0"), cfg.l2.num_sets, 3000, seed=0)
results = {}
for name in ("l2p", "l2s", "cc", "dsr", "snug"):
    scheme = make_scheme(name, cfg)
    system = CompiledCmpSystem(cfg, scheme, list(traces))
    results[name] = system.run(30000, warmup_instructions=5000).to_dict()
json.dump({"mode": kernel_mode(), "results": results}, sys.stdout)
"""


class TestInterpretedFallback:
    """The accelerated tiers are optional; the fallback is bit-identical.

    With ``REPRO_NO_NUMBA=1`` *and* ``REPRO_NO_CKERNEL=1`` the compiled
    core runs its pure-Python interpreted kernels and announces that once,
    in one line on stderr.  With only Numba disabled the native C tier
    serves, silently.  Either way the results match the reference loop
    term for term.
    """

    def _run_child(self, **env_knobs):
        import pathlib

        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        env = {**os.environ, "PYTHONPATH": str(src), **env_knobs}
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD_SCRIPT],
            capture_output=True, text=True, env=env, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout), proc.stderr

    def _reference_results(self):
        cfg, traces = build()
        return json.loads(json.dumps({
            name: run_core(ReferenceCmpSystem, cfg, name, traces, 30_000, 5_000)
            for name in ("l2p", "l2s", "cc", "dsr", "snug")
        }))

    def test_interpreted_kernels_bit_identical_with_notice(self):
        payload, stderr = self._run_child(
            REPRO_NO_NUMBA="1", REPRO_NO_CKERNEL="1"
        )
        assert payload["mode"] == "interpreted"
        assert payload["results"] == self._reference_results()
        notices = [l for l in stderr.splitlines() if l.startswith("repro.compiled:")]
        assert len(notices) == 1  # once per process, not once per run
        assert "disabled by REPRO_NO_NUMBA" in notices[0]
        assert "using interpreted kernels (bit-identical)" in notices[0]

    def test_no_numba_tier_bit_identical(self):
        payload, stderr = self._run_child(REPRO_NO_NUMBA="1")
        assert payload["mode"] in ("compiled-c", "interpreted")
        assert payload["results"] == self._reference_results()
        if payload["mode"] == "compiled-c":  # no notice when a fast tier runs
            assert "repro.compiled:" not in stderr
