"""Batched-core conformance: bit-identical to the reference on every path.

The batched core (:mod:`repro.core.batch`) advances locally-resolvable
accesses in bulk and falls back to scalar stepping at exactly the first
non-local access, so every arithmetic term matches the seed loop kept in
:mod:`repro.core.reference`.  This suite holds that contract at the
``SimResult.to_dict()`` level — full dict equality, floats with ``==`` —
across all six schemes, and on the edge paths where batching degrades or
interacts with other subsystems:

* ``l2s`` under a contention-modelled bus (``bulk_supported`` off: the
  batched core must degenerate to scalar stepping, still bit-identical);
* ``cc`` under contention + banked DRAM with ``check_invariants=True``
  (the occupancy models must be untouched by bulk consumption);
* ``snug`` with an attached :class:`OnlineDemandMonitor` (the observed
  reference stream must be the same stream, latch for latch);
* the budget-exhausted :class:`SimulationError` (same enriched per-core
  progress message from either production loop);
* CLI stores written under ``--sim-core batch`` vs ``--sim-core
  reference`` (byte-identical records, same manifest — the store-level
  face of the contract).
"""

import dataclasses

import pytest

from repro.common.config import scaled_config
from repro.common.errors import SimulationError
from repro.core.batch import BatchCmpSystem
from repro.core.cmp import CmpSystem
from repro.core.reference import ReferenceCmpSystem
from repro.schemes.factory import SCHEMES, make_scheme
from repro.workloads.mixes import build_mix_traces, get_mix

ALL_SCHEMES = sorted(SCHEMES)


def build(config_mut=None, *, scale="tiny", n_accesses=3_000):
    cfg = scaled_config(scale, seed=7)
    if config_mut is not None:
        cfg = config_mut(cfg)
    traces = build_mix_traces(get_mix("c4_0"), cfg.l2.num_sets, n_accesses, seed=0)
    return cfg, traces


def run_core(core_cls, cfg, scheme_name, traces, target, warmup, **core_kwargs):
    scheme = make_scheme(scheme_name, cfg)
    system = core_cls(cfg, scheme, list(traces), **core_kwargs)
    return system.run(target, warmup_instructions=warmup).to_dict()


class TestSchemeEquivalence:
    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_batch_matches_reference_tiny(self, scheme_name):
        cfg, traces = build()
        ref = run_core(ReferenceCmpSystem, cfg, scheme_name, traces, 30_000, 5_000)
        # check_invariants asserts around every bulk commit that the
        # occupancy models (bus, DRAM, write buffers) were not advanced.
        batch = run_core(
            BatchCmpSystem, cfg, scheme_name, traces, 30_000, 5_000,
            check_invariants=True,
        )
        fast = run_core(CmpSystem, cfg, scheme_name, traces, 30_000, 5_000)
        assert batch == ref
        assert fast == ref

    @pytest.mark.parametrize("scheme_name", ["l2s", "snug"])
    def test_batch_matches_reference_small(self, scheme_name):
        # Small scale exercises deeper runs (longer quiescent stretches,
        # more wraps); l2s covers the ordered-merge commit, snug the
        # stage-horizon clamping.
        cfg, traces = build(scale="small", n_accesses=4_000)
        ref = run_core(ReferenceCmpSystem, cfg, scheme_name, traces, 30_000, 5_000)
        batch = run_core(BatchCmpSystem, cfg, scheme_name, traces, 30_000, 5_000)
        assert batch == ref


class TestEdgePaths:
    def test_l2s_contention_falls_back_to_scalar(self):
        cfg, traces = build(
            lambda c: dataclasses.replace(
                c, bus=dataclasses.replace(c.bus, model_contention=True)
            )
        )
        assert not make_scheme("l2s", cfg).bulk_supported
        ref = run_core(ReferenceCmpSystem, cfg, "l2s", traces, 20_000, 2_000)
        batch = run_core(BatchCmpSystem, cfg, "l2s", traces, 20_000, 2_000)
        assert batch == ref

    def test_cc_contention_banked_dram_with_invariants(self):
        cfg, traces = build(
            lambda c: dataclasses.replace(
                c,
                bus=dataclasses.replace(c.bus, model_contention=True),
                dram=dataclasses.replace(c.dram, model_banks=True),
            )
        )
        ref = run_core(ReferenceCmpSystem, cfg, "cc", traces, 20_000, 2_000)
        batch = run_core(
            BatchCmpSystem, cfg, "cc", traces, 20_000, 2_000,
            check_invariants=True,
        )
        assert batch == ref

    def test_snug_online_monitor_sees_identical_stream(self):
        from repro.schemes.snug import OnlineDemandMonitor

        cfg, traces = build()
        results, monitors = [], []
        for core_cls in (ReferenceCmpSystem, BatchCmpSystem):
            scheme = make_scheme("snug", cfg)
            scheme.attach_monitor(
                OnlineDemandMonitor.from_config(cfg, chunk_accesses=512)
            )
            system = core_cls(cfg, scheme, list(traces))
            results.append(system.run(20_000, warmup_instructions=2_000).to_dict())
            monitors.append(scheme.monitor)
        assert results[0] == results[1]
        assert monitors[0].latches == monitors[1].latches

    def test_budget_exhausted_message_identical(self):
        cfg, traces = build()
        messages = []
        for core_cls in (CmpSystem, BatchCmpSystem):
            scheme = make_scheme("l2p", cfg)
            with pytest.raises(SimulationError) as exc_info:
                core_cls(cfg, scheme, list(traces)).run(200_000, max_events=5_000)
            messages.append(str(exc_info.value))
        assert "event budget exhausted (5000)" in messages[0]
        assert "core 0:" in messages[0]  # enriched per-core progress
        assert messages[0] == messages[1]


class TestCliStoreConformance:
    def test_sim_core_stores_byte_identical(self, tmp_path):
        """`--sim-core batch` and `--sim-core reference` persist
        byte-identical per-task records under one manifest."""
        from repro.cli import main
        from repro.engine.store import ResultStore
        from repro.scenario import preset_path

        a, b = tmp_path / "batch", tmp_path / "reference"
        for core, store in (("batch", a), ("reference", b)):
            assert main(["scenario", "run", str(preset_path("smoke-tiny")),
                         "--jobs", "0", "--sim-core", core,
                         "--store", str(store)]) == 0
        with ResultStore(a) as store_a, ResultStore(b) as store_b:
            ids = store_a.completed_ids()
            assert ids == store_b.completed_ids() and ids
            for task_id in sorted(ids):
                assert store_a.payload_bytes(task_id) == store_b.payload_bytes(
                    task_id
                )
        assert (a / "manifest.json").read_bytes() == (
            b / "manifest.json"
        ).read_bytes()

    def test_store_resumes_across_sim_cores(self, tmp_path):
        """A store written under one stepping loop resumes under another:
        sim_core is not part of the experiment identity."""
        from repro.cli import main
        from repro.scenario import preset_path

        store = tmp_path / "store"
        assert main(["scenario", "run", str(preset_path("smoke-tiny")),
                     "--jobs", "0", "--sim-core", "batch",
                     "--store", str(store)]) == 0
        assert main(["scenario", "run", str(preset_path("smoke-tiny")),
                     "--jobs", "0", "--sim-core", "fast",
                     "--store", str(store), "--resume"]) == 0
