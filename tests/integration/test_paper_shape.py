"""Qualitative reproduction checks: the paper's headline *shapes*.

These run at the ``fast`` scale (64-set slices) with warmup, so they are the
slowest tests in the suite (~1 min total).  Each asserts an ordering or
regime the paper's evaluation hinges on, with slack for the synthetic
workload substitution (see EXPERIMENTS.md for the quantitative record).
"""

import pytest

from repro import RunPlan, fast_config, get_mix, run_combo

PLAN = RunPlan(
    n_accesses=25_000,
    target_instructions=350_000,
    warmup_instructions=350_000,
    cc_probs=(0.0, 1.0),
)


@pytest.fixture(scope="module")
def c1_result():
    return run_combo(get_mix("c1_0"), fast_config(), PLAN)


@pytest.fixture(scope="module")
def c2_result():
    return run_combo(get_mix("c2_0"), fast_config(), PLAN)


@pytest.fixture(scope="module")
def c5_result():
    return run_combo(get_mix("c5_0"), fast_config(), PLAN)


class TestC1StressTest:
    """C1 (4 x ammp): only set-level grouping can share capacity."""

    def test_snug_gains_substantially(self, c1_result):
        assert c1_result.metrics["snug"]["throughput"] > 1.10

    def test_snug_beats_every_other_scheme(self, c1_result):
        snug = c1_result.metrics["snug"]["throughput"]
        for other in ("l2s", "cc_best", "dsr"):
            assert snug > c1_result.metrics[other]["throughput"], other

    def test_l2s_loses_in_stress(self, c1_result):
        """Identical hungry programs gain nothing from interleaving but pay
        the NUCA remote latency (paper Fig. 9, C1/C2 < 1)."""
        assert c1_result.metrics["l2s"]["throughput"] < 1.0


class TestC2StressTest:
    """C2 (4 x vpr, uniformly hungry): nothing to share — all schemes ~ L2P."""

    def test_all_schemes_near_baseline(self, c2_result):
        for scheme in ("cc_best", "dsr", "snug"):
            assert 0.95 < c2_result.metrics[scheme]["throughput"] < 1.05, scheme

    def test_snug_degrades_at_most_marginally(self, c2_result):
        assert c2_result.metrics["snug"]["throughput"] > 0.97


class TestC5Mix:
    """C5 (2 class A + 2 class D): classic takers + donors."""

    def test_cooperation_beats_baseline(self, c5_result):
        for scheme in ("cc_best", "dsr", "snug"):
            assert c5_result.metrics[scheme]["throughput"] > 1.03, scheme

    def test_snug_competitive_with_best(self, c5_result):
        snug = c5_result.metrics["snug"]["throughput"]
        best = max(
            c5_result.metrics[s]["throughput"] for s in ("l2s", "cc_best", "dsr")
        )
        assert snug > best - 0.02

    def test_givers_not_crushed(self, c5_result):
        """Fair speedup stays positive: donors keep acceptable performance."""
        assert c5_result.metrics["snug"]["fs"] > 1.0
