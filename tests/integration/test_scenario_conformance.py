"""Conformance: scenario-driven runs are bit-identical to flag-driven runs.

The acceptance contract of the scenario layer (ISSUE 5): running a bundled
preset via ``repro scenario run`` produces bit-identical ``SimResult`` s to
the equivalent flag-driven ``repro sweep`` invocation — across the serial
path and the inline and process execution backends — and the two spellings
share one content hash, so either may resume the other's result store.
"""

import json

import pytest

from repro.engine.execution import _trace_memo
from repro.experiments.performance import evaluate_all
from repro.scenario import (
    EngineOptions,
    load_scenario_file,
    preset_path,
    run_scenario,
    scenario_from_flags,
)

#: The preset and the flag set it claims equivalence with (see the preset
#: file header): repro --scale tiny --seed 7 sweep --classes C5
#: --combos-per-class 1.
PRESET = "smoke-tiny"
FLAGS = dict(scale="tiny", seed=7, classes=["C5"], combos_per_class=1)


def result_bits(combos):
    """Every SimResult of a run as its exact serialized form."""
    return {
        combo.mix_id: {
            scheme: result.to_dict() for scheme, result in combo.results.items()
        }
        for combo in combos
    }


@pytest.fixture(scope="module")
def preset_scenario():
    return load_scenario_file(preset_path(PRESET))


@pytest.fixture(scope="module")
def legacy_combos(preset_scenario):
    """The pre-scenario serial path: evaluate_all over scaled_config/_plan."""
    from repro.common.config import scaled_config
    from repro.scenario import plan_for_scale

    config = scaled_config(FLAGS["scale"], seed=FLAGS["seed"])
    plan = plan_for_scale(FLAGS["scale"], FLAGS["seed"])
    return evaluate_all(
        config, plan, classes=FLAGS["classes"],
        combos_per_class=FLAGS["combos_per_class"],
    ).combos


class TestScenarioConformance:
    def test_hash_equivalence(self, preset_scenario):
        assert (preset_scenario.content_hash()
                == scenario_from_flags(**FLAGS).content_hash())

    def test_serial_scenario_matches_legacy_path(self, preset_scenario, legacy_combos):
        combos = run_scenario(preset_scenario)
        assert result_bits(combos) == result_bits(legacy_combos)

    @pytest.mark.parametrize("backend,jobs", [("inline", 0), ("process", 2)])
    def test_backends_match_legacy_path(self, preset_scenario, legacy_combos,
                                        backend, jobs):
        _trace_memo.clear()
        combos = run_scenario(
            preset_scenario, EngineOptions(backend=backend, jobs=jobs)
        )
        assert result_bits(combos) == result_bits(legacy_combos)

    def test_cli_store_conformance(self, tmp_path):
        """`repro scenario run` and the equivalent `repro sweep` persist
        byte-identical per-task results (CLI end to end)."""
        from repro.cli import main

        a, b = tmp_path / "scenario", tmp_path / "flags"
        assert main(["scenario", "run", str(preset_path(PRESET)),
                     "--jobs", "0", "--store", str(a)]) == 0
        assert main(["--scale", "tiny", "--seed", "7", "sweep",
                     "--classes", "C5", "--combos-per-class", "1",
                     "--jobs", "0", "--store", str(b)]) == 0
        from repro.engine.store import ResultStore

        with ResultStore(a) as store_a, ResultStore(b) as store_b:
            ids = store_a.completed_ids()
            assert ids == store_b.completed_ids() and ids
            for task_id in sorted(ids):
                # Canonical record bodies, compared byte for byte — the
                # store-level face of the bit-identical-merge contract.
                assert store_a.payload_bytes(task_id) == store_b.payload_bytes(
                    task_id
                )
        # Same contract, same hash: the manifests agree on the scenario
        # identity even though one run was flag-driven.
        hash_a = json.loads((a / "manifest.json").read_text())["scenario"]["hash"]
        hash_b = json.loads((b / "manifest.json").read_text())["scenario"]["hash"]
        assert hash_a == hash_b

    def test_flag_store_resumable_by_scenario(self, tmp_path):
        """A store written by the flag path resumes under the preset (and a
        different scenario is refused with an actionable error)."""
        from repro.cli import main
        from repro.common.errors import EngineError

        store = tmp_path / "store"
        assert main(["--scale", "tiny", "--seed", "7", "sweep",
                     "--classes", "C5", "--combos-per-class", "1",
                     "--jobs", "0", "--store", str(store)]) == 0
        assert main(["scenario", "run", str(preset_path(PRESET)),
                     "--jobs", "0", "--store", str(store), "--resume"]) == 0
        with pytest.raises(EngineError, match="scenario"):
            main(["--scale", "tiny", "--seed", "8", "sweep",
                  "--classes", "C5", "--combos-per-class", "1",
                  "--jobs", "0", "--store", str(store), "--resume"])
