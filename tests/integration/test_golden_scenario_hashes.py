"""Pinned ``content_hash()`` of every bundled scenario preset.

``tests/data/golden_scenario_hashes.json`` freezes the content hash of
each preset under ``src/repro/scenario/presets/`` (grids pin one hash per
expanded scenario).  These hashes are **load-bearing identity**: the job
service coalesces concurrent submissions and serves its result cache by
them, resumable stores are keyed by them, and two builds that disagree on
a preset's hash will silently stop sharing work.  A diff here means the
scenario serialization or hashing contract changed — every sealed cache
entry and every cross-version dedupe is invalidated.

If the change is intentional (a new resolved field, a schema migration),
bump the goldens **intentionally, in their own commit, with the semantic
change spelled out in the message** — never as a drive-by::

    PYTHONPATH=src python - <<'PY'
    import json
    from pathlib import Path
    from repro.scenario import load_scenario_file, preset_names
    from repro.scenario.grid import ScenarioGrid
    out = {}
    for name in preset_names():
        loaded = load_scenario_file(name)
        if isinstance(loaded, ScenarioGrid):
            out[name] = {s.name: s.content_hash() for s in loaded.expand()}
        else:
            out[name] = loaded.content_hash()
    path = Path("tests/data/golden_scenario_hashes.json")
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    PY
"""

import json
from pathlib import Path

import pytest

from repro.scenario import load_scenario_file, preset_names
from repro.scenario.grid import ScenarioGrid

DATA_DIR = Path(__file__).resolve().parent.parent / "data"

GOLDEN = json.loads((DATA_DIR / "golden_scenario_hashes.json").read_text())

DRIFT_MESSAGE = (
    "content_hash() drifted from tests/data/golden_scenario_hashes.json. "
    "This invalidates every service cache entry and cross-run dedupe. If "
    "the hash change is intentional, bump the golden intentionally (see "
    "this module's docstring for the regeneration recipe) in a commit "
    "explaining the semantic change."
)


def test_golden_covers_every_bundled_preset():
    """A new preset must be pinned the moment it ships."""
    assert sorted(GOLDEN) == preset_names(), (
        "preset list drifted from the golden file; regenerate it (see "
        "module docstring) so every bundled preset stays pinned"
    )


@pytest.mark.parametrize("preset", sorted(GOLDEN))
def test_preset_content_hash_is_pinned(preset):
    loaded = load_scenario_file(preset)
    expected = GOLDEN[preset]
    if isinstance(loaded, ScenarioGrid):
        assert isinstance(expected, dict), DRIFT_MESSAGE
        actual = {s.name: s.content_hash() for s in loaded.expand()}
    else:
        actual = loaded.content_hash()
    assert actual == expected, DRIFT_MESSAGE


@pytest.mark.parametrize("preset", sorted(GOLDEN))
def test_hash_survives_serde_round_trip(preset):
    """to_dict()/from_dict() must preserve identity, or the service would
    hash a submitted scenario differently from the file it came from."""
    loaded = load_scenario_file(preset)
    scenarios = loaded.expand() if isinstance(loaded, ScenarioGrid) else [loaded]
    for scenario in scenarios:
        clone = type(scenario).from_dict(scenario.to_dict())
        assert clone.content_hash() == scenario.content_hash()


def test_names_are_cosmetic():
    """Renaming a scenario must not change its identity hash."""
    loaded = load_scenario_file("smoke-tiny")
    renamed = type(loaded).from_dict({**loaded.to_dict(), "name": "other-name"})
    assert renamed.content_hash() == loaded.content_hash()
