"""Per-scheme golden snapshots: every stepping loop pins to the reference.

``tests/data/golden_scheme_<name>_tiny.json`` holds the full
``SimResult.to_dict()`` of one fixed tiny-scale run per scheme, captured
from :class:`repro.core.reference.ReferenceCmpSystem` (the seed loop kept
verbatim as the conformance oracle).  Unlike the combo-level
``golden_c4_0_tiny.json`` (metrics and IPC only), these snapshots pin the
*entire* result — outcome tallies, per-core cycles, window metrics, scheme
stats — and every production loop (fast, batched and compiled) must
reproduce them **bit-identically**; floats compare with ``==``.

Regenerate (only with a commit explaining the semantic change)::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.common.config import tiny_config
    from repro.core.reference import ReferenceCmpSystem
    from repro.schemes.factory import make_scheme
    from repro.workloads.mixes import get_mix, build_mix_traces
    from tests.integration.test_golden_schemes import GOLDEN_SCHEMES, golden_inputs
    config, traces = golden_inputs()
    for name, kwargs in GOLDEN_SCHEMES.items():
        res = ReferenceCmpSystem(
            config, make_scheme(name, config, **kwargs), list(traces)
        ).run(50_000, warmup_instructions=30_000)
        with open(f"tests/data/golden_scheme_{name}_tiny.json", "w") as fh:
            json.dump(res.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
    PY
"""

import json
from pathlib import Path

import pytest

from repro.common.config import tiny_config
from repro.core.batch import BatchCmpSystem
from repro.core.cmp import CmpSystem
from repro.core.compiled import CompiledCmpSystem
from repro.schemes.factory import make_scheme
from repro.workloads.mixes import build_mix_traces, get_mix

DATA_DIR = Path(__file__).resolve().parent.parent / "data"

#: Scheme name -> factory kwargs of the pinned run (CC at one fixed spill
#: probability: the goldens pin simulation semantics, not the Best sweep).
GOLDEN_SCHEMES = {
    "l2p": {},
    "l2s": {},
    "cc": {"spill_probability": 0.5},
    "dsr": {},
    "snug": {},
}


def golden_inputs():
    """The fixed (config, traces) every snapshot was captured with."""
    config = tiny_config(seed=7)
    traces = build_mix_traces(get_mix("c4_0"), config.l2.num_sets, 3_000, 11)
    return config, traces


def load_golden(name):
    return json.loads((DATA_DIR / f"golden_scheme_{name}_tiny.json").read_text())


@pytest.mark.parametrize("name", sorted(GOLDEN_SCHEMES))
@pytest.mark.parametrize(
    "core_cls", [CmpSystem, BatchCmpSystem, CompiledCmpSystem]
)
def test_core_reproduces_golden(name, core_cls):
    config, traces = golden_inputs()
    scheme = make_scheme(name, config, **GOLDEN_SCHEMES[name])
    res = core_cls(config, scheme, list(traces)).run(
        50_000, warmup_instructions=30_000
    )
    golden = load_golden(name)
    # Canonical JSON equality catches any drift, including float-bit changes.
    assert json.dumps(res.to_dict(), sort_keys=True) == json.dumps(
        golden, sort_keys=True
    )


def test_goldens_cover_all_five_schemes():
    assert set(GOLDEN_SCHEMES) == {"l2p", "l2s", "cc", "dsr", "snug"}
    for name in GOLDEN_SCHEMES:
        assert (DATA_DIR / f"golden_scheme_{name}_tiny.json").exists()
