"""End-to-end: SNUG driven by an online streaming demand monitor.

The online path (:class:`~repro.schemes.snug.OnlineDemandMonitor`: a chunked
stack-distance profiler fed from the live access stream, cut at every
Stage-I latch) must produce the *same simulation* as the offline path (the
per-access reference profiler run over the recorded streams, its
classifications replayed through a
:class:`~repro.schemes.snug.ScheduledGtMonitor`).  That equality is the
"characterize alongside simulation" guarantee: moving the profile from a
precomputed artifact into the run changes nothing but the memory footprint.
"""

import numpy as np
import pytest

from repro.cache.stackdist import StackDistanceProfiler
from repro.common.config import tiny_config
from repro.engine import ParallelRunner
from repro.experiments.runner import RunPlan, run_combo, run_traces
from repro.schemes.snug import OnlineDemandMonitor, ScheduledGtMonitor, SnugCache
from repro.core.cmp import CmpSystem
from repro.workloads.mixes import build_mix_traces, get_mix

MIX = get_mix("c1_0")
TARGET = 25_000
WARMUP = 10_000
N_ACCESSES = 1_500


def monitored_run(monitor):
    """One tiny-scale SNUG simulation with *monitor* attached."""
    config = tiny_config(seed=11)
    traces = build_mix_traces(MIX, config.l2.num_sets, N_ACCESSES, seed=4)
    scheme = SnugCache(config).attach_monitor(monitor)
    system = CmpSystem(config, scheme, traces)
    return system.run(TARGET, warmup_instructions=WARMUP)


def offline_schedule(monitor: OnlineDemandMonitor):
    """Replay the recorded epoch streams through the per-access spec profiler."""
    config = tiny_config(seed=11)
    profilers = [
        StackDistanceProfiler(config.l2.num_sets, config.a_threshold)
        for _ in range(config.num_cores)
    ]
    schedule = []
    for epoch in monitor.epoch_streams:
        vectors = []
        for core, stream in enumerate(epoch):
            profilers[core].reference_many(np.asarray(stream, dtype=np.int64))
            demand = profilers[core].end_interval()
            vectors.append([d > config.l2.assoc for d in demand.tolist()])
        schedule.append(vectors)
    return schedule


class TestOnlineEqualsOffline:
    def test_online_monitor_matches_offline_profile_path(self):
        online_monitor = OnlineDemandMonitor.from_config(
            tiny_config(seed=11), chunk_accesses=257, record_streams=True
        )
        online = monitored_run(online_monitor)
        assert online_monitor.latched_demand, "run latched no epochs"

        schedule = offline_schedule(online_monitor)
        offline = monitored_run(ScheduledGtMonitor(schedule))
        assert online.to_dict() == offline.to_dict()

    def test_online_latches_match_offline_replay_bitwise(self):
        monitor = OnlineDemandMonitor.from_config(
            tiny_config(seed=11), chunk_accesses=64, record_streams=True
        )
        monitored_run(monitor)
        config = tiny_config(seed=11)
        profilers = [
            StackDistanceProfiler(config.l2.num_sets, config.a_threshold)
            for _ in range(config.num_cores)
        ]
        for latch, epoch in zip(monitor.latched_demand, monitor.epoch_streams):
            for core, stream in enumerate(epoch):
                profilers[core].reference_many(np.asarray(stream, dtype=np.int64))
                assert (latch[core] == profilers[core].end_interval()).all()

    def test_schedule_exhaustion_fails_loudly(self):
        from repro.common.errors import SimulationError

        with pytest.raises(SimulationError):
            monitored_run(ScheduledGtMonitor([]))


class TestMonitorModeChangesClassificationSourceOnly:
    def test_monitored_run_differs_from_counters_but_is_deterministic(self):
        config = tiny_config(seed=11)
        traces = build_mix_traces(MIX, config.l2.num_sets, N_ACCESSES, seed=4)
        plain = run_traces("snug", config, traces, TARGET, WARMUP)
        monitored = [
            run_traces("snug", config, traces, TARGET, WARMUP, snug_monitor=True)
            for _ in range(2)
        ]
        assert monitored[0].to_dict() == monitored[1].to_dict()
        # Same access stream, same substrate — only the G/T source differs.
        assert monitored[0].scheme == plain.scheme == "snug"

    def test_non_snug_scheme_rejects_monitor_request(self):
        from repro.common.errors import ConfigError

        config = tiny_config(seed=11)
        traces = build_mix_traces(MIX, config.l2.num_sets, N_ACCESSES, seed=4)
        with pytest.raises(ConfigError):
            run_traces("l2p", config, traces, TARGET, WARMUP, snug_monitor=True)


class TestMonitorUnderEngine:
    def plan(self) -> RunPlan:
        return RunPlan(
            n_accesses=N_ACCESSES,
            target_instructions=TARGET,
            warmup_instructions=WARMUP,
            seed=4,
            cc_probs=(0.0, 1.0),
            snug_monitor=True,
        )

    def test_engine_inline_matches_serial_with_monitor(self):
        config = tiny_config(seed=11)
        schemes = ("l2p", "snug")
        serial = run_combo(MIX, config, self.plan(), schemes=schemes)
        runner = ParallelRunner(config, self.plan(), schemes=schemes, jobs=0)
        [engine] = runner.run([MIX])
        assert serial.metrics == engine.metrics
        for name in serial.results:
            assert serial.results[name].to_dict() == engine.results[name].to_dict()

    def test_snug_intra_inherits_the_monitor_path(self):
        config = tiny_config(seed=11)
        traces = build_mix_traces(MIX, config.l2.num_sets, N_ACCESSES, seed=4)
        a = run_traces("snug_intra", config, traces, TARGET, WARMUP, snug_monitor=True)
        b = run_traces("snug_intra", config, traces, TARGET, WARMUP, snug_monitor=True)
        assert a.to_dict() == b.to_dict()
