"""End-to-end integration: full simulations through the public API."""

import pytest

from repro import (
    RunPlan,
    fast_config,
    get_mix,
    run_combo,
    run_traces,
    scheme_names,
    tiny_config,
)
from repro.workloads.mixes import build_mix_traces

PLAN = RunPlan(n_accesses=3_000, target_instructions=40_000, warmup_instructions=30_000)


class TestAllSchemesRun:
    @pytest.mark.parametrize("scheme", scheme_names())
    def test_scheme_completes(self, scheme):
        cfg = tiny_config()
        traces = build_mix_traces(get_mix("c4_0"), cfg.l2.num_sets, 2_000, 0)
        res = run_traces(scheme, cfg, traces, 25_000, 15_000)
        assert len(res.ipc) == 4
        assert all(x > 0 for x in res.ipc)
        assert sum(res.outcome_counts.values()) == sum(res.accesses)

    def test_determinism_across_runs(self):
        cfg = tiny_config()
        traces = build_mix_traces(get_mix("c3_0"), cfg.l2.num_sets, 2_000, 0)
        a = run_traces("snug", cfg, traces, 25_000, 10_000)
        b = run_traces("snug", cfg, traces, 25_000, 10_000)
        assert a.ipc == b.ipc
        assert a.stats == b.stats

    def test_seed_changes_results(self):
        cfg = tiny_config()
        t1 = build_mix_traces(get_mix("c3_0"), cfg.l2.num_sets, 2_000, 1)
        t2 = build_mix_traces(get_mix("c3_0"), cfg.l2.num_sets, 2_000, 2)
        a = run_traces("l2p", cfg, t1, 25_000)
        b = run_traces("l2p", cfg, t2, 25_000)
        assert a.ipc != b.ipc


class TestComboPipeline:
    def test_combo_metrics_sane(self):
        combo = run_combo(get_mix("c5_0"), tiny_config(), PLAN)
        for scheme, metrics in combo.metrics.items():
            for value in metrics.values():
                assert 0.3 < value < 3.0, (scheme, metrics)

    def test_every_mix_class_runs(self):
        from repro.workloads.mixes import mixes_in_class

        for cls in ("C1", "C2", "C3", "C4", "C5", "C6"):
            mix = mixes_in_class(cls)[0]
            combo = run_combo(mix, tiny_config(), PLAN, schemes=("snug",))
            assert "snug" in combo.metrics


class TestCrossSchemeSanity:
    def test_l2s_beats_l2p_for_single_hungry_program(self):
        """One capacity-hungry program + three idle-ish ones: the shared LLC
        gives the hungry one 4x capacity."""
        cfg = fast_config()
        mixes = build_mix_traces(get_mix("c5_0"), cfg.l2.num_sets, 6_000, 0)
        l2p = run_traces("l2p", cfg, mixes, 80_000, 60_000)
        l2s = run_traces("l2s", cfg, mixes, 80_000, 60_000)
        # ammp (core 0) must gain from the aggregate capacity.
        assert l2s.ipc[0] > l2p.ipc[0]

    def test_cc_spill_zero_equals_l2p(self):
        """CC with spill probability 0 degenerates to the private baseline."""
        cfg = tiny_config()
        traces = build_mix_traces(get_mix("c4_0"), cfg.l2.num_sets, 2_500, 0)
        l2p = run_traces("l2p", cfg, traces, 30_000, 10_000)
        cc0 = run_traces("cc", cfg, traces, 30_000, 10_000, spill_probability=0.0)
        assert l2p.ipc == cc0.ipc

    def test_snug_epochs_advance(self):
        cfg = tiny_config()
        traces = build_mix_traces(get_mix("c1_0"), cfg.l2.num_sets, 3_000, 0)
        res = run_traces("snug", cfg, traces, 60_000, 30_000)
        assert res.stats.get("epochs", 0) >= 1
