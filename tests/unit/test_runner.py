"""Unit tests for repro.experiments.runner."""

import pytest

from tests.helpers import tiny_system

from repro.experiments.runner import (
    CC_PROBS_FAST,
    CC_PROBS_FULL,
    RunPlan,
    run_cc_best,
    run_combo,
    run_traces,
)
from repro.workloads.mixes import build_mix_traces, get_mix


PLAN = RunPlan(n_accesses=2_500, target_instructions=30_000, warmup_instructions=20_000)


class TestRunPlan:
    def test_defaults_valid(self):
        RunPlan()

    def test_validation(self):
        with pytest.raises(ValueError):
            RunPlan(n_accesses=0)
        with pytest.raises(ValueError):
            RunPlan(warmup_instructions=-5)

    def test_cc_prob_constants(self):
        assert CC_PROBS_FULL == (0.0, 0.25, 0.5, 0.75, 1.0)
        assert set(CC_PROBS_FAST) <= set(CC_PROBS_FULL)


class TestRunTraces:
    def test_runs_one_scheme(self):
        cfg = tiny_system()
        traces = build_mix_traces(get_mix("c5_0"), cfg.l2.num_sets, 2_000, 0)
        res = run_traces("l2p", cfg, traces, 20_000, 10_000)
        assert res.scheme == "l2p"
        assert len(res.ipc) == 4


class TestCcBest:
    def test_picks_best_throughput(self):
        cfg = tiny_system()
        traces = build_mix_traces(get_mix("c5_0"), cfg.l2.num_sets, 2_000, 0)
        best, prob = run_cc_best(cfg, traces, 20_000, probs=(0.0, 1.0))
        assert prob in (0.0, 1.0)
        assert best.scheme == "cc_best"
        # Verify it is indeed the max of the two.
        r0 = run_traces("cc", cfg, traces, 20_000, spill_probability=0.0)
        r1 = run_traces("cc", cfg, traces, 20_000, spill_probability=1.0)
        assert best.throughput == pytest.approx(max(r0.throughput, r1.throughput))


class TestRunCombo:
    def test_all_metrics_present(self):
        combo = run_combo(get_mix("c5_0"), tiny_system(), PLAN)
        assert set(combo.results) == {"l2p", "l2s", "cc_best", "dsr", "snug"}
        for scheme, metrics in combo.metrics.items():
            assert set(metrics) == {"throughput", "aws", "fs"}
        assert combo.metrics["l2p"]["throughput"] == pytest.approx(1.0)

    def test_baseline_always_included(self):
        combo = run_combo(get_mix("c5_0"), tiny_system(), PLAN, schemes=("snug",))
        assert "l2p" in combo.results
        assert "snug" in combo.results

    def test_cc_best_prob_recorded(self):
        combo = run_combo(get_mix("c5_0"), tiny_system(), PLAN, schemes=("cc_best",))
        assert combo.cc_best_prob in PLAN.cc_probs
