"""Serde round-trips over every golden snapshot in ``tests/data/``.

The golden files are the repo's frozen ground truth; the engine store,
the socket backend, and the job service all ship :class:`SimResult`
dictionaries produced by ``to_dict()`` and revive them with
``from_dict()``.  These tests pin two contracts against real (not
synthetic) payloads:

* ``from_dict(to_dict(x))`` reproduces the golden dict **bit-identically**
  (floats compare with ``==`` — JSON's repr-based float serialization is
  lossless);
* the *legacy* shape — snapshots persisted before the windowed metrics of
  PR 4, i.e. without ``window_outcomes``/``window_latency`` — still loads,
  with the missing fields defaulting to empty (the ``repro store migrate``
  path).

Every file matching ``tests/data/golden_*.json`` must be classified here:
a ``SimResult`` snapshot (round-tripped) or a known non-``SimResult``
golden (listed in ``NON_SIMRESULT_GOLDENS`` with the suite that owns it).
Adding a golden without classifying it fails the catalog test.
"""

import json
from pathlib import Path

import pytest

from repro.core.cmp import SimResult

DATA_DIR = Path(__file__).resolve().parent.parent / "data"

#: Goldens that are deliberately NOT SimResult payloads, and who pins them.
NON_SIMRESULT_GOLDENS = {
    # ComboResult-level metrics + IPC; pinned by
    # tests/integration/test_golden_runs.py-style combo checks.
    "golden_c4_0_tiny.json",
    # A demand-profile vector, not a simulation outcome.
    "golden_demand_profile_tiny.json",
    # Scenario identity hashes; pinned by
    # tests/integration/test_golden_scenario_hashes.py.
    "golden_scenario_hashes.json",
}

SIMRESULT_GOLDENS = sorted(
    path.name
    for path in DATA_DIR.glob("golden_*.json")
    if path.name not in NON_SIMRESULT_GOLDENS
)


def test_every_golden_is_classified():
    all_goldens = {path.name for path in DATA_DIR.glob("golden_*.json")}
    unknown = all_goldens - NON_SIMRESULT_GOLDENS - set(SIMRESULT_GOLDENS)
    assert not unknown, (
        f"new golden file(s) {sorted(unknown)} must be added to this "
        "module's catalog: either they are SimResult snapshots (and get "
        "round-trip coverage for free) or they belong in "
        "NON_SIMRESULT_GOLDENS with a comment naming their owning suite"
    )
    assert SIMRESULT_GOLDENS, "expected SimResult goldens under tests/data/"


@pytest.mark.parametrize("name", SIMRESULT_GOLDENS)
def test_golden_round_trips_bit_identically(name):
    golden = json.loads((DATA_DIR / name).read_text())
    result = SimResult.from_dict(golden)
    assert result.to_dict() == golden
    # And a second generation is stable too (to_dict -> from_dict fixpoint).
    again = SimResult.from_dict(result.to_dict())
    assert again.to_dict() == result.to_dict()


@pytest.mark.parametrize("name", SIMRESULT_GOLDENS)
def test_golden_loads_from_legacy_shape(name):
    golden = json.loads((DATA_DIR / name).read_text())
    legacy = {
        key: value
        for key, value in golden.items()
        if key not in ("window_outcomes", "window_latency")
    }
    result = SimResult.from_dict(legacy)
    # Pre-window stores carry no window metrics; everything else must
    # survive untouched.
    assert result.window_outcomes == []
    assert result.window_latency == []
    revived = result.to_dict()
    for key, value in legacy.items():
        assert revived[key] == value


@pytest.mark.parametrize("name", SIMRESULT_GOLDENS)
def test_golden_summary_and_throughput_are_derivable(name):
    golden = json.loads((DATA_DIR / name).read_text())
    result = SimResult.from_dict(golden)
    assert result.throughput == sum(golden["ipc"])
    assert result.scheme in result.summary()
