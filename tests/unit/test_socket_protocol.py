"""Protocol robustness units: framing, MACs, caps, spool, fault specs.

The socket backend's receive path must reject hostile or corrupt byte
streams with :class:`EngineError` subclasses — cleanly, before allocation,
and above all **before unpickling** — instead of hanging or executing
attacker-controlled bytes.  These tests drive ``recv_msg``/``recv_hello``
over socketpairs with torn, oversized, garbage and wrong-MAC frames, pin
the ``_connect_with_retry`` retry bound, and cover the fault-spec grammar
and the on-disk result spool.
"""

from __future__ import annotations

import pickle
import socket as socketlib
import struct
import time

import pytest

from repro.common.errors import AuthError, EngineError, ProtocolError
from repro.engine.backends.crypto import make_cipher, supported_ciphers
from repro.engine.backends.faults import FaultInjector, FaultSpec, InjectedDeath
from repro.engine.backends.socket import (
    _MAX_FRAME,
    _build_frame,
    _connect_with_retry,
    _send_error,
    ResultSpool,
    PROTOCOL_VERSION,
    recv_hello,
    recv_msg,
    resolve_secret,
    send_hello,
    send_msg,
)

KEY = resolve_secret("unit-test-secret")
OTHER = resolve_secret("a-different-secret")


@pytest.fixture()
def pair():
    a, b = socketlib.socketpair()
    a.settimeout(5)
    b.settimeout(5)
    yield a, b
    a.close()
    b.close()


class _Boom:
    """Pickle payload with an observable ``__reduce__`` side effect."""

    loaded = False

    def __reduce__(self):
        return (setattr, (_Boom, "loaded", True))


class TestFraming:
    def test_round_trip(self, pair):
        a, b = pair
        send_msg(a, {"type": "ready", "n": 7}, KEY)
        assert recv_msg(b, KEY) == {"type": "ready", "n": 7}

    def test_clean_eof_is_none(self, pair):
        a, b = pair
        a.close()
        assert recv_msg(b, KEY) is None

    def test_truncated_frame_rejected(self, pair):
        a, b = pair
        frame = _build_frame(pickle.dumps({"type": "ready"}), KEY)
        a.sendall(frame[: len(frame) - 5])
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_msg(b, KEY)

    def test_oversized_frame_rejected_before_allocation(self, pair):
        a, b = pair
        # Claim a body far past the cap; send only the header.  The reject
        # must come from the length check alone — no allocation, no read.
        a.sendall(struct.pack(">I", _MAX_FRAME * 4))
        with pytest.raises(ProtocolError, match="refusing to allocate"):
            recv_msg(b, KEY)

    def test_runt_frame_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 8) + b"tooshort")
        with pytest.raises(ProtocolError, match="runt"):
            recv_msg(b, KEY)

    def test_wrong_mac_rejected(self, pair):
        a, b = pair
        send_msg(a, {"type": "ready"}, OTHER)
        with pytest.raises(AuthError, match="MAC verification failed"):
            recv_msg(b, KEY)

    def test_wrong_mac_payload_is_never_unpickled(self, pair):
        """A frame MAC'd with the wrong key whose payload is a malicious
        pickle must be rejected without its payload ever reaching the
        unpickler."""
        a, b = pair
        _Boom.loaded = False
        send_msg(a, {"bomb": _Boom()}, OTHER)
        with pytest.raises(EngineError):
            recv_msg(b, KEY)
        assert _Boom.loaded is False

    def test_tampered_payload_rejected(self, pair):
        """Flipping one payload bit after MAC'ing breaks verification."""
        a, b = pair
        frame = bytearray(_build_frame(pickle.dumps({"type": "ready"}), KEY))
        frame[-1] ^= 0x01
        a.sendall(bytes(frame))
        with pytest.raises(AuthError):
            recv_msg(b, KEY)

    def test_valid_mac_garbage_body_rejected(self, pair):
        """Even with a valid MAC (right key, corrupt producer), a payload
        the unpickler chokes on surfaces as ProtocolError, not a raw
        pickle traceback."""
        a, b = pair
        a.sendall(_build_frame(b"\x00not-a-pickle", KEY))
        with pytest.raises(ProtocolError, match="undecodable"):
            recv_msg(b, KEY)

    def test_error_frame_readable_across_key_mismatch(self, pair):
        """The coordinator's rejection frame must reach a worker holding
        the *wrong* key — that is the whole point of the unauthenticated
        error-frame peek."""
        a, b = pair
        _send_error(a, KEY, "worker authentication failed: get the right key")
        with pytest.raises(AuthError, match="get the right key"):
            recv_msg(b, OTHER)


class TestEncryptedChannel:
    @pytest.fixture(params=supported_ciphers())
    def cipher_pair(self, request):
        """Sender and receiver ciphers keyed identically, per cipher name."""
        salt = b"\x01" * 32
        return (
            make_cipher(request.param, KEY, salt=salt),
            make_cipher(request.param, KEY, salt=salt),
        )

    def test_encrypted_round_trip(self, pair, cipher_pair):
        a, b = pair
        tx, rx = cipher_pair
        message = {"type": "result", "chunk_id": "c1", "results": [1.5, 2.5]}
        send_msg(a, message, KEY, cipher=tx)
        assert recv_msg(b, KEY, cipher=rx) == message

    def test_payload_is_actually_ciphertext(self, pair, cipher_pair):
        """The pickled plaintext must not be visible in the frame bytes."""
        a, b = pair
        tx, _rx = cipher_pair
        marker = "very-recognizable-result-payload"
        send_msg(a, {"type": "result", "secret": marker}, KEY, cipher=tx)
        frame = b.recv(1 << 16)
        assert marker.encode() not in frame
        assert pickle.dumps({"type": "result", "secret": marker}) not in frame

    def test_plaintext_on_encrypted_channel_rejected(self, pair, cipher_pair):
        """A peer cannot downgrade the channel after the handshake."""
        a, b = pair
        _tx, rx = cipher_pair
        send_msg(a, {"type": "result"}, KEY)  # no cipher: plaintext pickle
        with pytest.raises(ProtocolError, match="downgrade refused"):
            recv_msg(b, KEY, cipher=rx)

    def test_encrypted_payload_without_cipher_rejected(self, pair, cipher_pair):
        a, b = pair
        tx, _rx = cipher_pair
        send_msg(a, {"type": "result"}, KEY, cipher=tx)
        with pytest.raises(ProtocolError, match="negotiated no cipher"):
            recv_msg(b, KEY)

    def test_tampered_ciphertext_rejected_before_unpickling(self, pair, cipher_pair):
        """Sealed bytes MAC'd with the *right* frame key but flipped after
        sealing must fail AEAD authentication, never reach the unpickler."""
        a, b = pair
        tx, rx = cipher_pair
        _Boom.loaded = False
        sealed = bytearray(b"E" + tx.seal(pickle.dumps({"bomb": _Boom()})))
        sealed[-1] ^= 0x01
        a.sendall(_build_frame(bytes(sealed), KEY))
        with pytest.raises(ProtocolError, match="authentication"):
            recv_msg(b, KEY, cipher=rx)
        assert _Boom.loaded is False

    def test_differently_keyed_cipher_rejected(self, pair):
        a, b = pair
        for name in supported_ciphers():
            tx = make_cipher(name, KEY, salt=b"\x01" * 32)
            rx = make_cipher(name, OTHER, salt=b"\x01" * 32)
            send_msg(a, {"type": "ready"}, KEY, cipher=tx)
            with pytest.raises(ProtocolError, match="authentication"):
                recv_msg(b, KEY, cipher=rx)

    def test_error_frame_still_readable_on_encrypted_channel(self, pair, cipher_pair):
        """Rejections are plaintext JSON by design (the peer may lack the
        channel keys); they must surface even when a cipher is active."""
        a, b = pair
        _tx, rx = cipher_pair
        _send_error(a, KEY, "coordinator says no")
        with pytest.raises(AuthError, match="coordinator says no"):
            recv_msg(b, KEY, cipher=rx)


class TestHello:
    def test_round_trip(self, pair):
        a, b = pair
        send_hello(a, "w1", KEY)
        hello = recv_hello(b, KEY)
        assert hello["type"] == "hello"
        assert hello["version"] == PROTOCOL_VERSION
        assert hello["worker"] == "w1"
        # The v2 encryption extension rides along in the same handshake:
        # offered payload ciphers plus the worker's half of the HKDF salt.
        assert hello["ciphers"] == supported_ciphers()
        assert len(bytes.fromhex(hello["nonce"])) == 16

    def test_garbage_handshake_rejected_without_allocation(self, pair):
        a, b = pair
        a.sendall(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        # "GET " reads as a ~1.2 GB length; the hello cap rejects it cold.
        with pytest.raises(ProtocolError, match="not a repro worker"):
            recv_hello(b, KEY)

    def test_legacy_v1_hello_rejected_actionably(self, pair):
        a, b = pair
        import json

        body = json.dumps({"type": "hello", "version": 1, "worker": "old"}).encode()
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(AuthError, match="stale protocol version 1"):
            recv_hello(b, KEY)

    def test_wrong_secret_hello_rejected_actionably(self, pair):
        a, b = pair
        send_hello(a, "w1", OTHER)
        with pytest.raises(AuthError, match="shared-secret mismatch"):
            recv_hello(b, KEY)

    def test_stale_version_hello_rejected(self, pair):
        a, b = pair
        send_hello(a, "w1", KEY, version=PROTOCOL_VERSION + 3)
        with pytest.raises(AuthError, match="protocol version"):
            recv_hello(b, KEY)


class TestSecretResolution:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_SECRET", "from-env")
        assert resolve_secret("explicit") == b"explicit"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_SECRET", "from-env")
        assert resolve_secret(None) == b"from-env"

    def test_default_key_without_any_secret(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_SECRET", raising=False)
        assert resolve_secret(None) == resolve_secret(None)
        assert resolve_secret(None) != b""


class TestConnectRetry:
    def test_never_listening_address_bounded_and_diagnosed(self):
        """Regression: a worker pointed at a never-listening port must give
        up within its deadline (not per-attempt-timeout past it) and name
        the last socket error in the message."""
        probe = socketlib.socket()
        probe.bind(("127.0.0.1", 0))
        _host, port = probe.getsockname()
        probe.close()  # nobody will ever listen here again
        start = time.monotonic()
        with pytest.raises(EngineError) as err:
            _connect_with_retry("127.0.0.1", port, timeout=1.0)
        elapsed = time.monotonic() - start
        assert elapsed < 5.0, f"retry loop overshot its deadline ({elapsed:.1f}s)"
        assert "last error" in str(err.value)
        assert f"127.0.0.1:{port}" in str(err.value)


class TestFaultSpec:
    def test_parse_round_trip(self):
        spec = FaultSpec.parse("seed=7,drop=0.1,dup=0.2,torn=0.05,crash=3")
        assert spec == FaultSpec(seed=7, drop=0.1, dup=0.2, torn=0.05, crash=3)

    @pytest.mark.parametrize(
        "bad",
        [
            "drop=2.0",          # probability out of range
            "drop=0.6,dup=0.6",  # probabilities sum past 1
            "crash=0",           # crash must be >= 1
            "delay_s=-1",        # negative delay
            "frobnicate=1",      # unknown field
            "drop=banana",       # not a number
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(EngineError):
            FaultSpec.parse(bad)

    def test_schedule_is_deterministic(self):
        """Same seed, same frame sequence, same fault decisions — the whole
        point of seed-driven injection is that a failing schedule replays."""
        spec = FaultSpec(seed=11, drop=0.2, dup=0.2, torn=0.1, die=0.1, delay=0.1)
        first = [FaultInjector(spec)._next_action() for _ in range(1)]  # warm check
        inj_a, inj_b = FaultInjector(spec), FaultInjector(spec)
        seq_a = [inj_a._next_action() for _ in range(300)]
        seq_b = [inj_b._next_action() for _ in range(300)]
        assert seq_a == seq_b
        assert seq_a[0] == first[0]
        # With these probabilities over 300 draws, every band fires.
        assert {"drop", "dup", "torn", "die", "delay", "send"} <= set(seq_a)

    def test_injected_death_is_a_connection_error(self):
        spec = FaultSpec(seed=0, die=1.0)
        injector = FaultInjector(spec)
        a, b = socketlib.socketpair()
        try:
            with pytest.raises(InjectedDeath):
                injector.send_frame(a, b"frame")
            assert isinstance(InjectedDeath("x"), ConnectionError)
        finally:
            a.close()
            b.close()

    def test_exempt_frames_consume_no_draw(self):
        spec = FaultSpec(seed=3, drop=1.0)
        injector = FaultInjector(spec)
        a, b = socketlib.socketpair()
        try:
            injector.send_frame(a, b"heartbeat", exempt=True)
            b.settimeout(2)
            assert b.recv(64) == b"heartbeat"  # delivered despite drop=1.0
            injector.send_frame(a, b"payload")
            assert injector.counts["drop"] == 1  # non-exempt frame dropped
        finally:
            a.close()
            b.close()


class TestResultSpool:
    def test_put_entries_delete_round_trip(self, tmp_path):
        spool = ResultSpool(tmp_path / "spool")
        payload = {"chunk_id": "c1", "task_ids": ["a"], "results": [1], "stats": {}}
        spool.put("sweepA", "c1", payload)
        spool.put("sweepB", "c9", dict(payload, chunk_id="c9"))
        assert spool.entries("sweepA") == [("c1", payload)]
        spool.delete("sweepA", "c1")
        assert spool.entries("sweepA") == []
        spool.delete("sweepA", "c1")  # idempotent
        assert [cid for cid, _ in spool.entries("sweepB")] == ["c9"]

    def test_corrupt_entries_skipped_and_removed(self, tmp_path):
        spool = ResultSpool(tmp_path / "spool")
        payload = {"chunk_id": "c1", "task_ids": ["a"], "results": [1], "stats": {}}
        spool.put("sweepA", "c1", payload)
        torn = tmp_path / "spool" / "sweepA" / "c2.pkl"
        torn.write_bytes(b"\x80\x05 torn mid-write")
        assert spool.entries("sweepA") == [("c1", payload)]
        assert not torn.exists()  # corrupt garbage is not kept around

    def test_gc_removes_only_old_unkept_sweeps(self, tmp_path):
        import os

        spool = ResultSpool(tmp_path / "spool")
        payload = {"chunk_id": "c1", "task_ids": ["a"], "results": [1], "stats": {}}
        spool.put("old-sweep", "c1", payload)
        spool.put("kept-sweep", "c1", payload)
        spool.put("fresh-sweep", "c1", payload)
        stale = time.time() - 10_000
        for sweep in ("old-sweep", "kept-sweep"):
            sweep_dir = tmp_path / "spool" / sweep
            for path in [sweep_dir, *sweep_dir.iterdir()]:
                os.utime(path, (stale, stale))
        removed = spool.gc(3600, keep={"kept-sweep"})
        assert removed == ["old-sweep"]
        assert not (tmp_path / "spool" / "old-sweep").exists()
        # The keep set shields the active sweep no matter how old it looks;
        # recent directories survive on age alone.
        assert spool.entries("kept-sweep") == [("c1", payload)]
        assert spool.entries("fresh-sweep") == [("c1", payload)]

    def test_gc_spares_sweep_with_one_fresh_entry(self, tmp_path):
        """A sweep dir is only dead when *every* file in it is old — one
        freshly spooled chunk keeps the whole sweep."""
        import os

        spool = ResultSpool(tmp_path / "spool")
        payload = {"chunk_id": "c1", "task_ids": ["a"], "results": [1], "stats": {}}
        spool.put("sweepA", "c1", payload)
        spool.put("sweepA", "c2", dict(payload, chunk_id="c2"))
        stale = time.time() - 10_000
        sweep_dir = tmp_path / "spool" / "sweepA"
        os.utime(sweep_dir, (stale, stale))
        os.utime(sweep_dir / "c1.pkl", (stale, stale))  # c2.pkl stays fresh
        assert spool.gc(3600) == []
        assert len(spool.entries("sweepA")) == 2

    def test_gc_on_missing_root_is_noop(self, tmp_path):
        spool = ResultSpool(tmp_path / "never-created")
        assert spool.gc(0) == []
