"""Unit tests for repro.cache.stackdist (Mattson profiling, Formulas 1-3)."""

import numpy as np
import pytest

from repro.cache.stackdist import StackDistanceProfiler, StackDistanceSet


class TestStackDistanceSet:
    def test_first_reference_misses(self):
        s = StackDistanceSet(8)
        assert s.reference(1) == 0

    def test_immediate_rereference_distance_one(self):
        s = StackDistanceSet(8)
        s.reference(1)
        assert s.reference(1) == 1

    def test_cyclic_distance_equals_working_set(self):
        """Cyclic access over W blocks has stack distance exactly W."""
        s = StackDistanceSet(16)
        w = 5
        for _ in range(3):  # warm + measure
            for b in range(w):
                s.reference(b)
        assert s.block_required() == w

    def test_block_required_no_hits_is_one(self):
        s = StackDistanceSet(8)
        for b in range(100):  # pure streaming
            s.reference(b)
        assert s.block_required() == 1

    def test_hit_count_monotone_in_assoc(self):
        """The LRU stack property: hit_count is non-decreasing in A."""
        rng = np.random.default_rng(0)
        s = StackDistanceSet(16)
        for a in rng.integers(0, 12, 500):
            s.reference(int(a))
        counts = [s.hit_count(a) for a in range(1, 17)]
        assert all(x <= y for x, y in zip(counts, counts[1:]))

    def test_block_required_matches_formula3(self):
        """block_required = min A with hit_count(A) == hit_count(A_thr)."""
        rng = np.random.default_rng(1)
        s = StackDistanceSet(16)
        for a in rng.integers(0, 10, 400):
            s.reference(int(a))
        req = s.block_required()
        total = s.hit_count(16)
        assert s.hit_count(req) == total
        if req > 1:
            assert s.hit_count(req - 1) < total

    def test_new_interval_clears_hist_keeps_stack(self):
        s = StackDistanceSet(8)
        s.reference(1)
        s.reference(1)
        s.new_interval()
        assert s.hit_count(8) == 0
        assert s.reference(1) == 1  # stack content persisted

    def test_depth_bounds_stack(self):
        s = StackDistanceSet(2)
        s.reference(1)
        s.reference(2)
        s.reference(3)  # evicts 1
        assert s.reference(1) == 0  # beyond depth: compulsory-like miss

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            StackDistanceSet(0)


class TestStackDistanceProfiler:
    def test_routes_by_low_bits(self):
        p = StackDistanceProfiler(num_sets=4, depth=8)
        p.reference(0)  # set 0
        p.reference(4)  # set 0 again (4 mod 4)
        p.reference(1)  # set 1
        req = p.end_interval()
        assert req.shape == (4,)

    def test_per_set_independence(self):
        p = StackDistanceProfiler(num_sets=2, depth=8)
        # Set 0 cycles 3 blocks {0,2,4}; set 1 streams.
        for _ in range(5):
            for b in (0, 2, 4):
                p.reference(b)
        for i in range(20):
            p.reference(1 + 2 * i)
        req = p.end_interval()
        assert req[0] == 3
        assert req[1] == 1

    def test_reference_many_equivalent(self):
        a = StackDistanceProfiler(4, 8)
        b = StackDistanceProfiler(4, 8)
        addrs = np.arange(50) % 12
        for x in addrs:
            a.reference(int(x))
        b.reference_many(addrs)
        assert (a.end_interval() == b.end_interval()).all()
        assert a.accesses == b.accesses == 50

    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ValueError):
            StackDistanceProfiler(3, 8)
