"""Unit tests for repro.workloads.mixes (Tables 7 and 8)."""

import pytest

from repro.common.errors import WorkloadError
from repro.mem.address import CORE_ID_SHIFT
from repro.workloads.mixes import (
    MIXES,
    build_mix_traces,
    get_mix,
    mix_classes,
    mixes_in_class,
)
from repro.workloads.spec2000 import CLASS_A, CLASS_B, CLASS_C, CLASS_D


class TestTable8:
    def test_21_combinations(self):
        assert len(MIXES) == 21

    def test_class_counts(self):
        counts = {c: len(mixes_in_class(c)) for c in mix_classes()}
        assert counts == {"C1": 3, "C2": 4, "C3": 3, "C4": 4, "C5": 3, "C6": 4}

    def test_c1_c2_are_stress_tests(self):
        for mix in (*mixes_in_class("C1"), *mixes_in_class("C2")):
            assert mix.is_stress_test

    def test_c1_uses_class_a(self):
        for mix in mixes_in_class("C1"):
            assert mix.programs[0] in CLASS_A

    def test_c2_uses_class_c(self):
        for mix in mixes_in_class("C2"):
            assert mix.programs[0] in CLASS_C

    def test_c3_composition(self):
        for mix in mixes_in_class("C3"):
            a = sum(p in CLASS_A for p in mix.programs)
            c = sum(p in CLASS_C for p in mix.programs)
            assert (a, c) == (2, 2), mix.mix_id

    def test_c4_composition(self):
        for mix in mixes_in_class("C4"):
            assert sum(p in CLASS_A for p in mix.programs) == 2
            assert sum(p in CLASS_B for p in mix.programs) == 1
            assert sum(p in CLASS_C for p in mix.programs) == 1

    def test_c5_composition(self):
        for mix in mixes_in_class("C5"):
            assert sum(p in CLASS_A for p in mix.programs) == 2
            assert sum(p in CLASS_D for p in mix.programs) == 2

    def test_c6_composition(self):
        for mix in mixes_in_class("C6"):
            assert sum(p in CLASS_A for p in mix.programs) == 2
            assert sum(p in CLASS_B for p in mix.programs) == 1
            assert sum(p in CLASS_D for p in mix.programs) == 1

    def test_mix_ids_unique(self):
        ids = [m.mix_id for m in MIXES]
        assert len(set(ids)) == len(ids)

    def test_get_mix(self):
        assert get_mix("c3_1").mix_class == "C3"
        with pytest.raises(WorkloadError):
            get_mix("c9_0")

    def test_unknown_class(self):
        with pytest.raises(WorkloadError):
            mixes_in_class("C7")


class TestBuildTraces:
    def test_four_rebased_traces(self):
        traces = build_mix_traces(get_mix("c5_0"), 16, 500, seed=0)
        assert len(traces) == 4
        for slot, t in enumerate(traces):
            assert (t.addrs >> CORE_ID_SHIFT == slot).all()

    def test_stress_instances_not_lockstep(self):
        traces = build_mix_traces(get_mix("c1_0"), 16, 500, seed=0)
        a = traces[0].addrs
        b = traces[1].addrs - (1 << CORE_ID_SHIFT)
        assert not (a == b).all()

    def test_seed_determinism(self):
        t1 = build_mix_traces(get_mix("c4_0"), 16, 300, seed=7)
        t2 = build_mix_traces(get_mix("c4_0"), 16, 300, seed=7)
        for a, b in zip(t1, t2):
            assert (a.addrs == b.addrs).all()
