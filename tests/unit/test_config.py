"""Unit tests for repro.common.config."""

import pytest

from repro.common.config import (
    BusConfig,
    CacheGeometry,
    CcConfig,
    DramConfig,
    DsrConfig,
    LatencyConfig,
    SnugConfig,
    SystemConfig,
    WriteBufferConfig,
    fast_config,
    paper_config,
    scaled_config,
    tiny_config,
)
from repro.common.errors import ConfigError


class TestCacheGeometry:
    def test_paper_geometry(self):
        g = CacheGeometry()  # 1 MB, 16-way, 64 B
        assert g.num_sets == 1024
        assert g.index_bits == 10
        assert g.offset_bits == 6
        assert g.num_lines == 16384

    def test_non_pow2_rejected(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=3 << 10)
        with pytest.raises(ConfigError):
            CacheGeometry(assoc=12)
        with pytest.raises(ConfigError):
            CacheGeometry(line_bytes=96)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=512, assoc=16, line_bytes=64)

    def test_128b_lines(self):
        g = CacheGeometry(line_bytes=128)
        assert g.num_sets == 512
        assert g.offset_bits == 7


class TestLatencyConfig:
    def test_paper_defaults(self):
        lat = LatencyConfig()
        assert lat.l1_hit == 1
        assert lat.l2_local == 10
        assert lat.l2_remote == 30
        assert lat.l2_remote_snug == 40
        assert lat.dram == 300

    def test_remote_below_local_rejected(self):
        with pytest.raises(ConfigError):
            LatencyConfig(l2_local=20, l2_remote=10)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            LatencyConfig(dram=-1)


class TestBusConfig:
    def test_line_transfer_cost(self):
        bus = BusConfig()  # 16 B wide, 4:1, 1 bus-cycle arbitration
        # 64 B = 4 beats + 1 arb = 5 bus cycles = 20 core cycles.
        assert bus.transfer_cycles(64) == 20

    def test_small_transfer(self):
        assert BusConfig().transfer_cycles(8) == 8  # 1 beat + arb = 2 * 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            BusConfig(width_bytes=12)
        with pytest.raises(ConfigError):
            BusConfig(speed_ratio=0)


class TestSnugConfig:
    def test_counter_init_is_msb_minus_one(self):
        snug = SnugConfig(counter_bits=4)
        assert snug.counter_init == 7
        assert snug.counter_max == 15

    def test_paper_epochs(self):
        snug = SnugConfig()
        assert snug.identify_cycles == 5_000_000
        assert snug.group_cycles == 100_000_000

    def test_p_must_be_pow2(self):
        with pytest.raises(ConfigError):
            SnugConfig(p_threshold=6)

    def test_bad_counter_width(self):
        with pytest.raises(ConfigError):
            SnugConfig(counter_bits=1)


class TestOtherConfigs:
    def test_cc_probability_bounds(self):
        CcConfig(spill_probability=0.0)
        CcConfig(spill_probability=1.0)
        with pytest.raises(ConfigError):
            CcConfig(spill_probability=1.5)

    def test_dsr_validation(self):
        with pytest.raises(ConfigError):
            DsrConfig(leader_sets_per_policy=0)
        with pytest.raises(ConfigError):
            DsrConfig(psel_bits=0)

    def test_dram_validation(self):
        with pytest.raises(ConfigError):
            DramConfig(latency=0)
        with pytest.raises(ConfigError):
            DramConfig(num_banks=3)

    def test_write_buffer_validation(self):
        with pytest.raises(ConfigError):
            WriteBufferConfig(entries=0)


class TestSystemConfig:
    def test_paper_config(self):
        cfg = paper_config()
        assert cfg.num_cores == 4
        assert cfg.l2.num_sets == 1024
        assert cfg.a_threshold == 32

    def test_fast_config_preserves_ratios(self):
        cfg = fast_config()
        assert cfg.l2.assoc == 16
        assert cfg.a_threshold == 32
        assert cfg.snug.identify_cycles < cfg.snug.group_cycles

    def test_tiny_config_valid(self):
        cfg = tiny_config()
        assert cfg.l2.num_sets == 16

    def test_leader_sets_must_fit(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                l2=CacheGeometry(size_bytes=4 << 10, assoc=4),  # 16 sets
                dsr=DsrConfig(leader_sets_per_policy=16),
            )

    def test_with_replaces_fields(self):
        cfg = tiny_config()
        cfg2 = cfg.with_(seed=999)
        assert cfg2.seed == 999
        assert cfg.seed != 999  # frozen original untouched

    def test_scaled_config_names(self):
        for name in ("tiny", "small", "medium", "paper"):
            assert scaled_config(name).num_cores == 4
        with pytest.raises(ConfigError):
            scaled_config("huge")
