"""Unit tests for repro.analysis.report."""

import numpy as np
import pytest

from repro.analysis.report import format_pct, render_distribution, render_series, render_table


class TestFormatPct:
    def test_basic(self):
        assert format_pct(0.139) == "13.9%"
        assert format_pct(1.0) == "100.0%"
        assert format_pct(0.0223, digits=2) == "2.23%"


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(["name", "val"], [["a", 1.5], ["bb", 2.25]])
        lines = out.splitlines()
        assert "name" in lines[0] and "val" in lines[0]
        assert "1.5000" in out and "2.2500" in out

    def test_title(self):
        out = render_table(["x"], [["y"]], title="Table 9")
        assert out.startswith("Table 9")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_float_fmt(self):
        out = render_table(["v"], [[0.12345]], float_fmt="{:.1f}")
        assert "0.1" in out and "0.12345" not in out


class TestRenderSeries:
    def test_layout(self):
        out = render_series(
            ["C1", "C2"],
            {"snug": [1.1, 1.0], "dsr": [1.05, 1.0]},
            x_name="class",
        )
        lines = out.splitlines()
        assert lines[0].startswith("class")
        assert "snug" in lines[0] and "dsr" in lines[0]
        assert "C1" in out and "1.1000" in out


class TestRenderDistribution:
    def test_shows_percentages(self):
        sizes = np.array([[0.25, 0.75], [0.5, 0.5]])
        out = render_distribution(sizes, ["1~4", "5~8"])
        assert "25.0%" in out and "75.0%" in out

    def test_sampling_caps_rows(self):
        sizes = np.tile([[0.5, 0.5]], (100, 1))
        out = render_distribution(sizes, ["a", "b"], max_rows=10)
        # header + separator + <= 10 rows (+ no title)
        assert len(out.splitlines()) <= 12
