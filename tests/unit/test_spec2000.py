"""Unit tests for repro.workloads.spec2000 (benchmark models, Table 6)."""

import numpy as np
import pytest

from repro.common.errors import WorkloadError
from repro.workloads.spec2000 import (
    CLASS_A,
    CLASS_B,
    CLASS_C,
    CLASS_D,
    NON_UNIFORM_BENCHMARKS,
    PROFILES,
    benchmark_names,
    get_profile,
    make_benchmark_trace,
)
from repro.workloads.synthetic import draw_demand_map


class TestSuiteShape:
    def test_26_benchmarks(self):
        assert len(PROFILES) == 26

    def test_table6_classes_disjoint(self):
        all_named = set(CLASS_A) | set(CLASS_B) | set(CLASS_C) | set(CLASS_D)
        assert len(all_named) == 12

    def test_seven_non_uniform(self):
        assert set(NON_UNIFORM_BENCHMARKS) == {
            "ammp", "apsi", "galgel", "gcc", "parser", "twolf", "vortex",
        }

    def test_lookup(self):
        assert get_profile("ammp").name == "ammp"
        with pytest.raises(WorkloadError):
            get_profile("doom3")

    def test_names_sorted(self):
        names = benchmark_names()
        assert names == sorted(names)
        assert "applu" in names


def first_phase_demand(name, num_sets=1024):
    spec = get_profile(name)
    rng = np.random.default_rng(spec.demand_seed())
    return draw_demand_map(spec.phases[0].bands, num_sets, rng)


class TestClassCalibration:
    def test_class_a_footprint_above_slice(self):
        """Class A: mean demand > baseline associativity-fraction of 1 slice."""
        for name in CLASS_A:
            spec = get_profile(name)
            # > 1 MB of a 1 MB slice <=> mean per-set demand > 16 blocks... the
            # paper's cut is app footprint vs slice capacity.
            assert spec.mean_demand(1024) * 1024 * 64 > (1 << 20) * 0.9, name

    def test_class_b_d_footprint_below_slice(self):
        for name in (*CLASS_B, *CLASS_D):
            spec = get_profile(name)
            assert spec.mean_demand(1024) * 1024 * 64 < (1 << 20), name

    def test_class_c_footprint_above_slice(self):
        for name in CLASS_C:
            spec = get_profile(name)
            assert spec.mean_demand(1024) * 1024 * 64 > (1 << 20), name

    def test_non_uniform_profiles_have_both_giver_and_taker_sets(self):
        for name in ("ammp", "parser", "vortex", "apsi", "gcc", "galgel", "twolf"):
            w = first_phase_demand(name)
            givers = (w <= 8).mean()
            takers = (w > 16).mean()
            assert givers >= 0.10, name
            assert takers >= 0.10, name

    def test_uniform_class_c_all_takers(self):
        for name in CLASS_C:
            w = first_phase_demand(name)
            assert (w > 16).all(), name

    def test_uniform_class_d_no_takers(self):
        for name in CLASS_D:
            w = first_phase_demand(name)
            assert (w <= 16).all(), name

    def test_ammp_fig1_signature(self):
        """Fig. 1: ~40% of ammp's sets need only 1-4 blocks."""
        w = first_phase_demand("ammp")
        assert 0.35 < ((w <= 4).mean()) < 0.50

    def test_applu_streaming_signature(self):
        """Fig. 3: applu's sets all sit in the 1-4 bucket."""
        w = first_phase_demand("applu")
        assert (w <= 4).all()
        assert get_profile("applu").phases[0].stream_frac > 0.5

    def test_vortex_has_phases(self):
        assert len(get_profile("vortex").phases) >= 3


class TestTraceGeneration:
    def test_make_trace(self):
        t = make_benchmark_trace("gzip", 64, 1000, seed=3)
        assert len(t) == 1000
        assert t.name == "gzip"

    def test_identical_instances_share_demand_map(self):
        """C1 stress-test property: same intrinsic map, different interleaving."""
        a = make_benchmark_trace("ammp", 64, 3000, seed=1)
        b = make_benchmark_trace("ammp", 64, 3000, seed=2)
        assert not (a.addrs[: len(b.addrs)] == b.addrs).all()
        fa = {s: np.unique(a.addrs[(a.addrs % 64) == s]).size for s in range(64)}
        fb = {s: np.unique(b.addrs[(b.addrs % 64) == s]).size for s in range(64)}
        close = sum(abs(fa[s] - fb[s]) <= 2 for s in range(64))
        assert close >= 58  # footprints agree per set (sampling tolerance)
