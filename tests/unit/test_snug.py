"""Unit tests for the SNUG scheme (Section 3)."""

from dataclasses import replace

from tests.helpers import addr, fill_set, tiny_system

from repro.schemes.base import Outcome
from repro.schemes.snug import STAGE_GROUP, STAGE_IDENTIFY, SnugCache


def make(**snug_overrides):
    cfg = tiny_system()
    if snug_overrides:
        cfg = cfg.with_(snug=replace(cfg.snug, **snug_overrides))
    return SnugCache(cfg)


def force_takers(scheme, core, sets, value=True):
    """Directly set G/T bits (white-box helper for grouping tests)."""
    for s in sets:
        scheme.meta[core].gt_taker[s] = value


def enter_group_stage(scheme):
    """Advance past Stage I without touching monitors."""
    scheme._advance_stage(scheme.snug_cfg.identify_cycles)
    assert scheme.stage == STAGE_GROUP


class TestStageMachinery:
    def test_starts_identifying(self):
        assert make().stage == STAGE_IDENTIFY

    def test_transitions_at_boundaries(self):
        s = make()  # identify 1_000, group 10_000
        s._advance_stage(999)
        assert s.stage == STAGE_IDENTIFY
        s._advance_stage(1_000)
        assert s.stage == STAGE_GROUP
        s._advance_stage(10_999)
        assert s.stage == STAGE_GROUP
        s._advance_stage(11_000)
        assert s.stage == STAGE_IDENTIFY
        assert s.epoch == 1

    def test_multiple_boundaries_in_one_jump(self):
        s = make()
        s._advance_stage(25_000)  # crosses I,G,I,G
        assert s.epoch >= 2

    def test_initial_vector_all_givers(self):
        s = make()
        assert s.taker_fraction(0) == 0.0


class TestShadowAndMonitor:
    def test_clean_eviction_recorded_in_shadow(self):
        s = make()
        fill_set(s, 0, 0, 5)  # evicts tag 0 clean
        assert addr(0, 0, 0) in s.meta[0].shadows[0].tags()

    def test_dirty_eviction_not_shadowed(self):
        s = make()
        s.access(0, addr(0, 0, 0), True, 0)
        fill_set(s, 0, 0, 4, t0=400, start_tag=1)
        assert addr(0, 0, 0) not in s.meta[0].shadows[0].tags()

    def test_shadow_hit_increments_monitor(self):
        s = make()
        fill_set(s, 0, 0, 5)  # tag 0 evicted to shadow
        before = s.meta[0].monitors[0].value
        s.access(0, addr(0, 0, 0), False, 900)  # still Stage I
        assert s.meta[0].monitors[0].value == before + 1
        assert s.flat_stats()["l2_0.shadow_hits"] == 1

    def test_shadow_exclusive_after_refill(self):
        s = make()
        fill_set(s, 0, 0, 5)
        s.access(0, addr(0, 0, 0), False, 900)  # shadow hit -> invalidated
        assert addr(0, 0, 0) not in s.meta[0].shadows[0].tags()
        assert s.slices[0].probe(addr(0, 0, 0)) is not None

    def test_real_hits_decrement_via_mod_p(self):
        s = make()
        a = addr(0, 2, 0)
        s.access(0, a, False, 0)
        before = s.meta[0].monitors[2].value
        for k in range(8):  # p = 8 hits
            s.access(0, a, False, 100 * (k + 1))
        assert s.meta[0].monitors[2].value == before - 1

    def test_gt_latched_from_msb_and_reset(self):
        s = make()
        # Compressed issue times keep everything inside Stage I.
        for k in range(5):
            s.access(0, addr(0, 0, k), False, k)
        s.access(0, addr(0, 0, 0), False, 10)  # shadow hit: counter 7 -> 8
        s._advance_stage(1_000)
        assert s.meta[0].gt_taker[0] is True
        assert s.meta[0].monitors[0].value == 7  # reset for next epoch

    def test_monitor_during_group_flag(self):
        s = make(monitor_during_group=False)
        enter_group_stage(s)
        fill_set(s, 0, 0, 5, t0=2_000)
        before = s.meta[0].monitors[0].value
        s.access(0, addr(0, 0, 0), False, 5_000)
        assert s.meta[0].monitors[0].value == before  # sampling frozen

        s2 = make(monitor_during_group=True)
        enter_group_stage(s2)
        fill_set(s2, 0, 0, 5, t0=2_000)
        before = s2.meta[0].monitors[0].value
        s2.access(0, addr(0, 0, 0), False, 5_000)
        assert s2.meta[0].monitors[0].value == before + 1


class TestGrouping:
    def test_no_spills_during_identify(self):
        s = make()
        force_takers(s, 0, range(16))
        fill_set(s, 0, 0, 6)  # still in Stage I
        assert s.flat_stats().get("l2_0.spills_out", 0) == 0

    def test_giver_set_does_not_spill(self):
        s = make()
        enter_group_stage(s)
        fill_set(s, 0, 0, 6, t0=2_000)  # set 0 is a giver by default
        assert s.flat_stats().get("l2_0.spills_out", 0) == 0

    def test_case1_same_index_giver_hosts(self):
        s = make()
        enter_group_stage(s)
        force_takers(s, 0, [4])  # spiller set at core 0
        # Peers' set 4 remain givers -> case 1, f=0.
        fill_set(s, 0, 4, 5, t0=2_000)
        hosted = [
            (i, line)
            for i, sl in enumerate(s.slices)
            for line in sl.resident()
            if line.cc
        ]
        assert len(hosted) == 1
        peer, line = hosted[0]
        assert s.amap.set_index(line.addr) == 4
        assert line.f is False
        assert s.slices[peer].probe(line.addr, set_index=4) is line

    def test_case2_flipped_giver_hosts(self):
        s = make()
        enter_group_stage(s)
        force_takers(s, 0, [4])
        for peer in (1, 2, 3):  # peers' set 4 all takers; set 5 givers
            force_takers(s, peer, [4])
        fill_set(s, 0, 4, 5, t0=2_000)
        hosted = [
            (i, line)
            for i, sl in enumerate(s.slices)
            for line in sl.resident()
            if line.cc
        ]
        assert len(hosted) == 1
        peer, line = hosted[0]
        assert line.f is True
        assert s.amap.set_index(line.addr) == 4  # home index still 4
        assert s.slices[peer].probe(line.addr, set_index=5) is line  # lives in 5

    def test_case3_all_takers_no_response(self):
        s = make()
        enter_group_stage(s)
        for core in range(4):
            force_takers(s, core, [4, 5])
        fill_set(s, 0, 4, 5, t0=2_000)
        assert s.flat_stats().get("l2_0.spills_unplaced", 0) == 1
        assert sum(sl.cc_occupancy() for sl in s.slices) == 0

    def test_flip_disabled_restricts_to_same_index(self):
        s = make(flip_enabled=False)
        enter_group_stage(s)
        force_takers(s, 0, [4])
        for peer in (1, 2, 3):
            force_takers(s, peer, [4])  # same-index all takers; 5 is giver
        fill_set(s, 0, 4, 5, t0=2_000)
        assert s.flat_stats().get("l2_0.spills_unplaced", 0) == 1


class TestRetrieval:
    def prepped(self, **kw):
        s = make(**kw)
        enter_group_stage(s)
        force_takers(s, 0, [4])
        return s

    def test_retrieve_from_same_index_giver(self):
        s = self.prepped()
        victim = addr(0, 4, 0)
        fill_set(s, 0, 4, 5, t0=2_000)
        res = s.access(0, victim, False, 5_000)
        assert res.outcome is Outcome.REMOTE_HIT
        assert res.latency >= s.config.latency.l2_remote_snug
        assert s.slices[0].probe(victim) is not None
        # Forwarded copy invalidated: exactly one on-chip copy remains.
        copies = sum(
            (sl.probe(victim) is not None)
            + (sl.probe(victim, set_index=5) is not None)
            for sl in s.slices
        )
        assert copies == 1

    def test_retrieve_from_flipped_set(self):
        s = self.prepped()
        for peer in (1, 2, 3):
            force_takers(s, peer, [4])
        victim = addr(0, 4, 0)
        fill_set(s, 0, 4, 5, t0=2_000)
        res = s.access(0, victim, False, 5_000)
        assert res.outcome is Outcome.REMOTE_HIT

    def test_gt_gated_lookup_skips_taker_sets(self):
        """A block hosted in a set that later flips to taker is flushed, so
        the gated lookup stays consistent (never a stale unreachable copy)."""
        s = self.prepped(flush_on_flip_to_taker=True)
        victim = addr(0, 4, 0)
        fill_set(s, 0, 4, 5, t0=2_000)
        host = next(i for i in range(4) if s.slices[i].cc_occupancy())
        # Simulate the host's set 4 flipping to taker at an epoch boundary.
        s.meta[host].monitors[4].on_shadow_hit()  # force MSB
        s._advance_stage(11_000)  # Stage I
        s._advance_stage(12_000)  # latch + Stage II
        assert s.meta[host].gt_taker[4]
        assert s.slices[host].cc_occupancy() == 0  # flushed
        res = s.access(0, victim, False, 13_000)
        assert res.outcome is Outcome.MEMORY  # honest miss, no stale copy

    def test_snug_remote_latency_is_40(self):
        s = self.prepped()
        victim = addr(0, 4, 0)
        fill_set(s, 0, 4, 5, t0=2_000)
        res = s.access(0, victim, False, 5_000)
        assert res.latency == s.config.latency.l2_remote_snug


class TestCoherenceRules:
    def test_dirty_victims_never_spilled(self):
        s = make()
        enter_group_stage(s)
        force_takers(s, 0, [2])
        s.access(0, addr(0, 2, 0), True, 2_000)
        fill_set(s, 0, 2, 4, t0=2_500, start_tag=1)
        assert s.flat_stats().get("l2_0.spills_out", 0) == 0

    def test_at_most_one_copy_invariant(self):
        s = make()
        enter_group_stage(s)
        force_takers(s, 0, list(range(16)))
        force_takers(s, 1, list(range(16)))
        for set_index in range(8):
            fill_set(s, 0, set_index, 7, t0=2_000 + set_index * 3_000)
            fill_set(s, 1, set_index, 6, t0=2_500 + set_index * 3_000)
        seen = set()
        for sl in s.slices:
            for line in sl.resident():
                assert line.addr not in seen
                seen.add(line.addr)

    def test_host_victim_never_cascades_spill(self):
        s = make()
        enter_group_stage(s)
        force_takers(s, 0, [4])
        # Make peer 1's set 4 a giver holding its own clean data.
        fill_set(s, 1, 4, 4, t0=2_000)
        fill_set(s, 0, 4, 9, t0=20_000)  # many spills into peers
        stats = s.flat_stats()
        # Only core 0 (the taker) ever spilled.
        for c in (1, 2, 3):
            assert stats.get(f"l2_{c}.spills_out", 0) == 0
