"""Unit tests for repro.common.stats."""

from repro.common.stats import StatGroup


class TestStatGroup:
    def test_add_and_get(self):
        g = StatGroup("g")
        g.add("hits")
        g.add("hits", 4)
        assert g.get("hits") == 5

    def test_missing_counter_is_zero(self):
        assert StatGroup("g").get("nothing") == 0

    def test_child_identity(self):
        g = StatGroup("g")
        assert g.child("a") is g.child("a")

    def test_flatten_nested(self):
        root = StatGroup("root")
        root.add("x", 1)
        root.child("c1").add("y", 2)
        root.child("c1").child("c2").add("z", 3)
        flat = root.flatten()
        assert flat == {"x": 1, "c1.y": 2, "c1.c2.z": 3}

    def test_reset_recursive(self):
        root = StatGroup("root")
        root.add("x")
        root.child("c").add("y")
        root.reset()
        assert root.flatten() == {}

    def test_merge_from(self):
        g = StatGroup("g")
        g.add("a", 1)
        g.merge_from({"a": 2, "b": 3})
        assert g.get("a") == 3
        assert g.get("b") == 3

    def test_iteration(self):
        g = StatGroup("g")
        g.add("k", 7)
        assert dict(iter(g)) == {"k": 7}
