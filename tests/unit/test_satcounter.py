"""Unit tests for repro.cache.satcounter."""

import pytest

from repro.cache.satcounter import DemandMonitorCounter, SaturatingCounter


class TestSaturatingCounter:
    def test_default_init_below_msb(self):
        c = SaturatingCounter(4)
        assert c.value == 7
        assert not c.msb

    def test_msb_flips_at_half(self):
        c = SaturatingCounter(4, initial=7)
        c.increment()
        assert c.value == 8
        assert c.msb

    def test_saturates_high(self):
        c = SaturatingCounter(2, initial=3)
        c.increment()
        assert c.value == 3

    def test_saturates_low(self):
        c = SaturatingCounter(2, initial=0)
        c.decrement()
        assert c.value == 0

    def test_reset(self):
        c = SaturatingCounter(4)
        c.increment()
        c.reset()
        assert c.value == 7

    def test_bad_width(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0)

    def test_bad_initial(self):
        with pytest.raises(ValueError):
            SaturatingCounter(3, initial=8)


class TestDemandMonitorCounter:
    def test_paper_example_figure7(self):
        """A 4-bit counter initialized to 7: one net shadow surplus => taker."""
        m = DemandMonitorCounter(bits=4, p=8)
        assert not m.is_taker
        m.on_shadow_hit()
        assert m.is_taker  # 7 -> 8, MSB set

    def test_p_hits_decrement_once(self):
        m = DemandMonitorCounter(bits=4, p=4)
        for _ in range(4):
            m.on_real_hit()
        assert m.value == 6  # one decrement after p hits

    def test_shadow_hits_count_toward_p(self):
        m = DemandMonitorCounter(bits=4, p=4)
        m.on_shadow_hit()  # +1 and 1/4 toward decrement
        for _ in range(3):
            m.on_real_hit()  # completes the modulo -> -1
        assert m.value == 7  # 7 +1 -1

    def test_taker_iff_sigma_exceeds_one_over_p(self):
        # 2 shadow hits among 8 total = sigma 0.25 > 1/8 -> taker.
        m = DemandMonitorCounter(bits=4, p=8)
        m.on_shadow_hit()
        m.on_shadow_hit()
        for _ in range(6):
            m.on_real_hit()
        assert m.is_taker

    def test_giver_when_sigma_below_bar(self):
        # 1 shadow among 16 = sigma 1/16 < 1/8 -> giver.
        m = DemandMonitorCounter(bits=4, p=8)
        m.on_shadow_hit()
        for _ in range(15):
            m.on_real_hit()
        assert not m.is_taker

    def test_pure_real_hits_drift_to_giver(self):
        m = DemandMonitorCounter(bits=4, p=8)
        for _ in range(200):
            m.on_real_hit()
        assert m.value == 0
        assert not m.is_taker

    def test_reset_rearms(self):
        m = DemandMonitorCounter()
        m.on_shadow_hit()
        m.reset()
        assert m.value == 7
        assert not m.is_taker

    def test_p_must_be_pow2(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            DemandMonitorCounter(p=5)
