"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_characterize_args(self):
        args = build_parser().parse_args(["characterize", "ammp"])
        assert args.command == "characterize"
        assert args.benchmark == "ammp"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "doom3"])

    def test_run_mix_xor_programs(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])  # neither given
        args = build_parser().parse_args(["run", "--mix", "c3_0"])
        assert args.mix == "c3_0"

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "huge", "overhead"])

    def test_survey_args(self):
        args = build_parser().parse_args(["survey", "--jobs", "2"])
        assert args.command == "survey"
        assert args.jobs == 2

    def test_survey_negative_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["survey", "--jobs", "-1"])


class TestCommands:
    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "%" in out

    def test_characterize_tiny(self, capsys):
        rc = main([
            "--scale", "tiny", "characterize", "applu",
            "--intervals", "3", "--interval-accesses", "500",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "applu" in out and "uniform" in out

    def test_survey_tiny(self, capsys):
        rc = main([
            "--scale", "tiny", "survey",
            "--intervals", "2", "--interval-accesses", "400",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Section 2.3 survey" in out
        assert "ammp" in out and "applu" in out

    def test_survey_parallel_output_identical(self, capsys):
        """--jobs N must print exactly what the serial path prints."""
        argv = ["--scale", "tiny", "survey", "--intervals", "2",
                "--interval-accesses", "400"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_run_tiny(self, capsys):
        rc = main([
            "--scale", "tiny", "run", "--mix", "c5_0",
            "--schemes", "l2p", "snug",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "snug" in out and "Normalized to L2P" in out

    def test_run_custom_programs(self, capsys):
        rc = main([
            "--scale", "tiny", "run",
            "--programs", "gzip", "swim", "mesa", "applu",
            "--schemes", "l2p", "dsr",
        ])
        assert rc == 0
        assert "custom" in capsys.readouterr().out

    def test_sweep_tiny(self, capsys):
        rc = main([
            "--scale", "tiny", "sweep", "--classes", "C5",
            "--combos-per-class", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "Figure 11" in out
