"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_characterize_args(self):
        args = build_parser().parse_args(["characterize", "ammp"])
        assert args.command == "characterize"
        assert args.benchmark == "ammp"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "doom3"])

    def test_run_mix_xor_programs(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])  # neither given
        args = build_parser().parse_args(["run", "--mix", "c3_0"])
        assert args.mix == "c3_0"

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "huge", "overhead"])

    def test_survey_args(self):
        args = build_parser().parse_args(["survey", "--jobs", "2"])
        assert args.command == "survey"
        assert args.jobs == 2

    def test_survey_negative_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["survey", "--jobs", "-1"])

    def test_stream_flags(self):
        args = build_parser().parse_args(["survey", "--stream", "--chunk", "4096"])
        assert args.stream and args.chunk == 4096
        args = build_parser().parse_args(["characterize", "ammp", "--stream"])
        assert args.stream and args.chunk is None

    def test_chunk_requires_stream(self):
        with pytest.raises(SystemExit):
            main(["survey", "--chunk", "4096"])
        with pytest.raises(SystemExit):
            main(["characterize", "ammp", "--stream", "--chunk", "0"])

    def test_snug_monitor_flag(self):
        args = build_parser().parse_args(
            ["run", "--mix", "c3_0", "--snug-monitor"]
        )
        assert args.snug_monitor
        args = build_parser().parse_args(["sweep"])
        assert not args.snug_monitor

    def test_backend_choices(self):
        args = build_parser().parse_args(["run", "--mix", "c3_0", "--backend", "socket"])
        assert args.backend == "socket"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mix", "c3_0", "--backend", "mpi"])

    def test_bind_requires_socket_backend(self):
        with pytest.raises(SystemExit):
            main(["run", "--mix", "c3_0", "--bind", "127.0.0.1:9"])
        with pytest.raises(SystemExit):
            main(["run", "--mix", "c3_0", "--backend", "socket", "--bind", "nonsense"])

    def test_worker_args(self):
        args = build_parser().parse_args(["worker", "--connect", "10.0.0.2:7009"])
        assert args.command == "worker"
        assert args.connect == "10.0.0.2:7009"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])  # --connect required
        with pytest.raises(SystemExit):
            main(["worker", "--connect", "not-an-address"])

    def test_worker_spool_gc_flags(self):
        args = build_parser().parse_args(
            ["worker", "--connect", "h:1", "--spool", "d",
             "--spool-gc", "--spool-gc-age", "3600"]
        )
        assert args.spool_gc and args.spool_gc_age == 3600.0
        with pytest.raises(SystemExit):  # GC without a spool to collect
            main(["worker", "--connect", "127.0.0.1:1", "--spool-gc"])
        with pytest.raises(SystemExit):
            main(["worker", "--connect", "127.0.0.1:1", "--spool", "d",
                  "--spool-gc", "--spool-gc-age", "-1"])

    def test_store_subcommands_parse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])  # subcommand required
        for sub in ("verify", "repair", "compact", "migrate"):
            args = build_parser().parse_args(["store", sub, "some/dir"])
            assert args.command == "store"
            assert args.store_command == sub
            assert args.dir == "some/dir"

    def test_store_migrate_shards_validated(self):
        args = build_parser().parse_args(
            ["store", "migrate", "d", "--shards", "4"]
        )
        assert args.shards == 4
        with pytest.raises(SystemExit):
            main(["store", "migrate", "d", "--shards", "0"])


class TestScenarioParser:
    def test_scenario_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_scenario_run_args(self):
        args = build_parser().parse_args(["scenario", "run", "smoke-tiny"])
        assert args.command == "scenario"
        assert args.scenario_command == "run"
        assert args.file == "smoke-tiny"

    def test_scenario_run_takes_engine_flags(self):
        args = build_parser().parse_args(
            ["scenario", "run", "f.yaml", "--jobs", "2", "--store", "d", "--resume"]
        )
        assert args.jobs == 2 and args.store == "d" and args.resume

    def test_scenario_run_resume_requires_store(self):
        with pytest.raises(SystemExit):
            main(["scenario", "run", "f.yaml", "--resume"])

    def test_scenario_validate_many_files(self):
        args = build_parser().parse_args(["scenario", "validate", "a.yaml", "b.yaml"])
        assert args.files == ["a.yaml", "b.yaml"]

    def test_dump_scenario_flag(self):
        args = build_parser().parse_args(
            ["run", "--mix", "c3_0", "--dump-scenario", "out.yaml"]
        )
        assert args.dump_scenario == "out.yaml"
        args = build_parser().parse_args(["sweep", "--dump-scenario", "s.yaml"])
        assert args.dump_scenario == "s.yaml"


class TestScenarioCommands:
    def preset(self, name="smoke-tiny"):
        from repro.scenario import preset_path

        return str(preset_path(name))

    def test_validate_presets_ok(self, capsys):
        from repro.scenario import preset_names

        files = [self.preset(n) for n in preset_names()]
        assert main(["scenario", "validate", *files]) == 0
        out = capsys.readouterr().out
        assert out.count("OK ") == len(files)

    def test_validate_bad_file_fails_with_path(self, tmp_path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text("scenario: 1\nname: x\nworkload: {mixes: [c9_9]}\n")
        assert main(["scenario", "validate", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "FAIL" in err and "workload.mixes[0]" in err

    def test_expand_lists_grid_points(self, capsys):
        assert main(["scenario", "expand", self.preset("epoch-sensitivity")]) == 0
        out = capsys.readouterr().out
        assert out.count("epoch-sensitivity__") == 6

    def test_expand_writes_files(self, tmp_path, capsys):
        out_dir = tmp_path / "expanded"
        assert main(["scenario", "expand", self.preset("epoch-sensitivity"),
                     "--out", str(out_dir)]) == 0
        from repro.scenario import Scenario

        written = sorted(out_dir.glob("*.yaml"))
        assert len(written) == 6
        for path in written:
            assert Scenario.load(path).name == path.stem

    def test_scenario_run_smoke(self, capsys):
        assert main(["scenario", "run", self.preset("smoke-tiny")]) == 0
        out = capsys.readouterr().out
        assert "scenario smoke-tiny" in out
        assert "Normalized to L2P" in out

    def test_scenario_run_by_preset_name(self, capsys):
        assert main(["scenario", "run", "smoke-tiny"]) == 0
        assert "scenario smoke-tiny" in capsys.readouterr().out

    def test_run_bad_file_clean_error(self, tmp_path, capsys):
        """scenario run/expand report malformed files as one-line errors
        (with the field path), not tracebacks."""
        bad = tmp_path / "bad.yaml"
        bad.write_text("scenario: 1\nname: x\nworkload: {mixes: [c9_9]}\n")
        assert main(["scenario", "run", str(bad)]) == 1
        assert "workload.mixes[0]" in capsys.readouterr().err
        assert main(["scenario", "expand", str(bad)]) == 1
        assert "workload.mixes[0]" in capsys.readouterr().err

    def test_run_unknown_preset_clean_error(self, capsys):
        assert main(["scenario", "run", "smoke-tiy"]) == 1
        err = capsys.readouterr().err
        assert "smoke-tiny" in err  # lists the real presets

    def test_multi_scenario_socket_refused(self, capsys):
        """A grid over the socket backend would strand workers after the
        first point's shutdown; the CLI refuses upfront."""
        assert main(["scenario", "run", self.preset("epoch-sensitivity"),
                     "--backend", "socket"]) == 1
        assert "one scenario per coordinator" in capsys.readouterr().err

    def test_env_trace_cache_does_not_switch_engine_path(self, tmp_path,
                                                         capsys, monkeypatch):
        """$REPRO_TRACE_CACHE alone must not flip a plain run onto the
        engine path (only the explicit --trace-cache flag does)."""
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "tc"))
        assert main(["--scale", "tiny", "run", "--mix", "c1_0",
                     "--schemes", "l2p"]) == 0
        assert "engine:" not in capsys.readouterr().out

    def test_dump_scenario_round_trips(self, tmp_path, capsys):
        """--dump-scenario snapshots the flag invocation as a file whose
        scenario run reproduces the same contract (same hash)."""
        from repro.scenario import Scenario, scenario_from_flags

        path = tmp_path / "snap.yaml"
        assert main([
            "--scale", "tiny", "run", "--mix", "c5_0",
            "--schemes", "l2p", "snug", "--dump-scenario", str(path),
        ]) == 0
        assert "scenario written to" in capsys.readouterr().out
        dumped = Scenario.load(path)
        flags = scenario_from_flags(scale="tiny", seed=7, mix="c5_0",
                                    schemes=("l2p", "snug"))
        assert dumped.content_hash() == flags.content_hash()


class TestStoreCommands:
    """`repro store verify|repair|compact|migrate` over real stores."""

    def _store(self, root):
        from repro.engine.store import ResultStore

        with ResultStore(root) as store:
            store.initialize({"k": 1})
            store.save("c1_0__l2p", {"result": {"ipc": [0.5]}})
            store.save("c1_0__snug", {"result": {"ipc": [0.7]}})
        return root

    def test_verify_clean_store(self, tmp_path, capsys):
        root = self._store(tmp_path / "s")
        assert main(["store", "verify", str(root)]) == 0
        assert "verify OK" in capsys.readouterr().out

    def test_verify_then_repair_bit_flip(self, tmp_path, capsys):
        root = self._store(tmp_path / "s")
        [segment] = [
            p for p in sorted(root.glob("shards/*/seg-*.seg"))
            if b"c1_0__snug" in p.read_bytes()
        ]
        data = bytearray(segment.read_bytes())
        data[data.find(b'"ipc"') + 2] ^= 0x01
        segment.write_bytes(bytes(data))

        assert main(["store", "verify", str(root)]) == 1
        out = capsys.readouterr().out
        assert "verify FAILED" in out and "repro store repair" in out
        assert main(["store", "repair", str(root)]) == 0
        assert "quarantined" in capsys.readouterr().out
        assert main(["store", "verify", str(root)]) == 0
        assert "verify OK" in capsys.readouterr().out

    def test_compact_reports_reclaim(self, tmp_path, capsys):
        from repro.engine.store import ResultStore

        root = self._store(tmp_path / "s")
        with ResultStore(root) as store:
            store.save("c1_0__l2p", {"result": {"ipc": [0.6]}})  # supersede
        assert main(["store", "compact", str(root)]) == 0
        assert "reclaimed" in capsys.readouterr().out

    def test_migrate_legacy_store(self, tmp_path, capsys):
        import json as jsonlib

        root = tmp_path / "legacy"
        (root / "results").mkdir(parents=True)
        (root / "manifest.json").write_text(jsonlib.dumps({"k": 1}))
        (root / "results" / "t1.json").write_text(jsonlib.dumps({"v": 1}))
        assert main(["store", "migrate", str(root)]) == 0
        assert "migrated 1 task result(s)" in capsys.readouterr().out
        assert main(["store", "verify", str(root)]) == 0

    def test_missing_store_is_clean_error(self, tmp_path, capsys):
        assert main(["store", "verify", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err


class TestCommands:
    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "%" in out

    def test_characterize_tiny(self, capsys):
        rc = main([
            "--scale", "tiny", "characterize", "applu",
            "--intervals", "3", "--interval-accesses", "500",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "applu" in out and "uniform" in out

    def test_survey_tiny(self, capsys):
        rc = main([
            "--scale", "tiny", "survey",
            "--intervals", "2", "--interval-accesses", "400",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Section 2.3 survey" in out
        assert "ammp" in out and "applu" in out

    def test_survey_parallel_output_identical(self, capsys):
        """--jobs N must print exactly what the serial path prints."""
        argv = ["--scale", "tiny", "survey", "--intervals", "2",
                "--interval-accesses", "400"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_run_tiny(self, capsys):
        rc = main([
            "--scale", "tiny", "run", "--mix", "c5_0",
            "--schemes", "l2p", "snug",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "snug" in out and "Normalized to L2P" in out

    def test_run_custom_programs(self, capsys):
        rc = main([
            "--scale", "tiny", "run",
            "--programs", "gzip", "swim", "mesa", "applu",
            "--schemes", "l2p", "dsr",
        ])
        assert rc == 0
        assert "custom" in capsys.readouterr().out

    def test_sweep_tiny(self, capsys):
        rc = main([
            "--scale", "tiny", "sweep", "--classes", "C5",
            "--combos-per-class", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "Figure 11" in out

    def test_run_backend_inline_summary_line(self, capsys, tmp_path):
        from repro.engine.execution import _trace_memo

        _trace_memo.clear()  # isolate counters from earlier in-process runs
        rc = main([
            "--scale", "tiny", "run", "--mix", "c5_0",
            "--schemes", "l2p", "snug",
            "--backend", "inline", "--trace-cache", str(tmp_path / "tc"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "engine: backend=inline" in out
        assert "2 task(s): 0 resumed, 2 simulated" in out
        assert "traces:" in out and "1 generated" in out

    def test_run_trace_cache_hit_reported(self, capsys, tmp_path):
        from repro.engine.execution import _trace_memo

        argv = [
            "--scale", "tiny", "run", "--mix", "c5_1",
            "--schemes", "l2p", "--backend", "process", "--jobs", "1",
            "--trace-cache", str(tmp_path / "tc"),
        ]
        _trace_memo.clear()
        assert main(argv) == 0
        capsys.readouterr()
        _trace_memo.clear()
        assert main(argv) == 0
        assert "1 cache hit(s)" in capsys.readouterr().out

    def test_sweep_socket_cli_end_to_end(self, capsys):
        """Acceptance: a socket-backend sweep driven purely through the CLI
        completes against two real `repro worker` subprocesses."""
        import os
        import socket as socketlib
        import subprocess
        import sys
        import threading

        probe = socketlib.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        rc_box = {}

        def coordinator():
            rc_box["rc"] = main([
                "--scale", "tiny", "sweep", "--classes", "C5",
                "--combos-per-class", "1",
                "--backend", "socket", "--bind", f"127.0.0.1:{port}",
            ])

        coord = threading.Thread(target=coordinator)
        coord.start()
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", f"127.0.0.1:{port}"],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            )
            for _ in range(2)
        ]
        coord.join(timeout=240)
        worker_out = [w.communicate(timeout=60)[0] for w in workers]
        assert not coord.is_alive(), "coordinator sweep did not finish"
        assert rc_box["rc"] == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "Figure 11" in out
        assert "backend=socket" in out
        assert f"repro worker --connect 127.0.0.1:{port}" in out
        for w, text in zip(workers, worker_out):
            assert w.returncode == 0, text
            assert "processed" in text


class TestServiceParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--root", "/tmp/svc"])
        assert args.command == "serve"
        assert args.bind == "127.0.0.1:7781"
        assert args.workers == 1 and args.jobs == 0 and args.max_attempts == 3

    def test_serve_requires_root(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_validation(self):
        with pytest.raises(SystemExit):
            main(["serve", "--root", "/tmp/svc", "--bind", "nonsense"])
        with pytest.raises(SystemExit):
            main(["serve", "--root", "/tmp/svc", "--workers", "0"])
        with pytest.raises(SystemExit):
            main(["serve", "--root", "/tmp/svc", "--max-attempts", "0"])

    def test_job_verbs_parse(self):
        args = build_parser().parse_args(["job", "submit", "smoke-tiny", "--wait"])
        assert args.job_command == "submit" and args.wait
        args = build_parser().parse_args(["job", "status", "job-000001"])
        assert args.job_command == "status" and args.job_id == "job-000001"
        args = build_parser().parse_args(
            ["job", "result", "job-000001", "--connect", "10.0.0.1:9999", "--out", "x"]
        )
        assert args.connect == "10.0.0.1:9999" and args.out == "x"
        assert build_parser().parse_args(["job", "list"]).job_command == "list"

    def test_job_validation(self):
        with pytest.raises(SystemExit):
            main(["job", "list", "--connect", "nonsense"])
        with pytest.raises(SystemExit):
            main(["job", "submit", "smoke-tiny", "--wait-timeout", "0"])


class TestServiceCommands:
    def scenario_file(self, tmp_path, seed=7):
        import json as json_mod

        from repro.experiments.runner import RunPlan
        from repro.scenario import Scenario, SystemSpec, WorkloadSpec

        scenario = Scenario(
            name=f"cli-e2e-{seed}",
            system=SystemSpec(scale="tiny", seed=seed),
            workload=WorkloadSpec(mixes=("c5_0",)),
            schemes=("l2p",),
            plan=RunPlan(n_accesses=1_200, target_instructions=20_000,
                         warmup_instructions=10_000, seed=seed),
        )
        path = tmp_path / "scenario.yaml"  # JSON is a YAML subset
        path.write_text(json_mod.dumps(scenario.to_dict()))
        return path

    def test_job_round_trip_over_live_service(self, tmp_path, capsys):
        from repro.service import SimulationService

        path = self.scenario_file(tmp_path)
        with SimulationService(tmp_path / "svc", port=0, sync=False) as service:
            connect = ["--connect", f"127.0.0.1:{service.port}"]
            rc = main(["job", "submit", str(path), "--wait", *connect])
            out = capsys.readouterr().out
            assert rc == 0
            assert "state=done" in out and "job-000001" in out
            rc = main(["job", "submit", str(path), *connect])
            out = capsys.readouterr().out
            assert rc == 0 and "deduplicated=true" in out
            rc = main(["job", "result", "job-000001", *connect,
                       "--out", str(tmp_path / "payloads")])
            out = capsys.readouterr().out
            assert rc == 0 and "wrote 1 task payload(s)" in out
            assert (tmp_path / "payloads" / "c5_0__l2p.bin").exists()
            rc = main(["job", "list", *connect])
            assert "2 job(s)" in capsys.readouterr().out
            assert rc == 0

    def test_job_cancel_unknown_id_clean_error(self, tmp_path, capsys):
        from repro.service import SimulationService

        with SimulationService(tmp_path / "svc", port=0, sync=False) as service:
            rc = main(["job", "status", "job-999999",
                       "--connect", f"127.0.0.1:{service.port}"])
        assert rc == 1
        assert "job-999999" in capsys.readouterr().err

    def test_job_connect_refused_clean_error(self, capsys):
        # Nothing listens on this port of TEST-NET; connect fails fast.
        rc = main(["job", "list", "--connect", "127.0.0.1:1"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_job_submit_grid_refused(self, tmp_path, capsys):
        from repro.service import SimulationService

        grid = tmp_path / "grid.yaml"
        grid.write_text(
            '{"grid": 1, "name": "g", "base": {"name": "g", "system": {"scale": "tiny"}, '
            '"workload": {"mixes": ["c5_0"]}, "schemes": ["l2p"]}, '
            '"axes": {"system.seed": [1, 2]}}'
        )
        with SimulationService(tmp_path / "svc", port=0, sync=False) as service:
            rc = main(["job", "submit", str(grid),
                       "--connect", f"127.0.0.1:{service.port}"])
        assert rc == 1
        assert "scenario grid" in capsys.readouterr().err
