"""Unit tests for the L2S shared organization."""

from tests.helpers import tiny_system

from repro.schemes.base import Outcome
from repro.schemes.l2p import PrivateL2
from repro.schemes.l2s import SharedL2


def make():
    return SharedL2(tiny_system())


def sweep(scheme, core, blocks, now=0):
    """Access every block once; return (end_time, on_chip_hits)."""
    hits = 0
    for b in blocks:
        r = scheme.access(core, b, False, now)
        hits += r.hit_on_chip
        now += r.latency + 1
    return now, hits


class TestRouting:
    def test_bank_is_low_bits(self):
        s = make()
        assert s._route(0) == (0, 0)
        assert s._route(1) == (1, 0)
        assert s._route(5) == (1, 1)
        assert s._route(7) == (3, 1)

    def test_local_vs_remote_latency(self):
        s = make()
        lat = s.config.latency
        s.access(0, 0, False, 0)  # block 0 homes in bank 0
        assert s.access(0, 0, False, 500).latency == lat.l2_local
        assert s.access(1, 0, False, 1000).latency == lat.l2_remote

    def test_remote_hit_outcome(self):
        s = make()
        s.access(0, 0, False, 0)
        assert s.access(1, 0, False, 500).outcome is Outcome.REMOTE_HIT

    def test_miss_pays_bank_plus_dram(self):
        s = make()
        res = s.access(1, 0, False, 0)  # remote bank, cold
        assert res.outcome is Outcome.MEMORY
        assert res.latency == s.config.latency.l2_remote + s.config.latency.dram


class TestSharing:
    def test_one_core_uses_aggregate_capacity(self):
        """128 blocks: cyclic sweep thrashes one private slice (64 lines)
        but fits entirely in the shared LLC (256 lines)."""
        cfg = tiny_system()
        blocks = list(range(128))
        shared = SharedL2(cfg)
        now, _ = sweep(shared, 0, blocks)
        _, shared_hits = sweep(shared, 0, blocks, now)
        assert shared_hits == 128

        private = PrivateL2(cfg)
        now, _ = sweep(private, 0, blocks)
        _, private_hits = sweep(private, 0, blocks, now)
        assert private_hits == 0

    def test_single_copy_no_duplication(self):
        s = make()
        s.access(0, 0, False, 0)
        s.access(1, 0, False, 500)
        total = sum(len(list(b.resident())) for b in s.banks)
        assert total == 1

    def test_quarter_of_accesses_local_on_average(self):
        s = make()
        blocks = list(range(64))
        now, _ = sweep(s, 0, blocks)
        local = remote = 0
        for b in blocks:
            r = s.access(0, b, False, now)
            now += r.latency + 1
            local += r.outcome is Outcome.LOCAL_HIT
            remote += r.outcome is Outcome.REMOTE_HIT
        assert local == 16
        assert remote == 48


class TestWrites:
    def test_write_marks_dirty(self):
        s = make()
        s.access(0, 0, False, 0)
        s.access(0, 0, True, 500)
        bank, local = s._route(0)
        assert s.banks[bank].probe(local).dirty

    def test_wbuf_direct_read(self):
        s = make()
        # Blocks 0, 64, 128, ...: all bank 0, set 0 (local addrs 0, 16, 32...).
        # Issue times are compressed so the dirty victim has not yet drained
        # to DRAM when it is re-read.
        blocks = [64 * t for t in range(5)]
        for k, b in enumerate(blocks):
            s.access(0, b, True, k)
        res = s.access(0, 0, False, 10)  # evicted dirty, still buffered
        assert res.outcome is Outcome.WBUF_HIT
