"""Plumbing for the selectable stepping loop and the event-budget valve.

``RunPlan.sim_core`` / ``RunPlan.max_events`` ship the batched-core knobs
to every execution backend with the rest of the run sizing.  The invariants
this file pins:

* ``sim_core`` never changes results (the conformance contract), so it is
  excluded from the scenario content hash and the result-store manifest —
  stores written under different stepping loops stay interchangeable;
* ``max_events`` *is* part of the experiment contract (a tighter valve can
  abort runs the default would finish) and therefore hashes;
* scenario files written before either knob existed parse and re-serialize
  byte-identically (defaults are omitted from ``plan_to_dict``);
* the CLI flags reach :class:`EngineOptions` without flipping a serial run
  onto the engine path;
* :meth:`SimResult.from_dict` still accepts pre-window-metrics payloads
  (stores migrated from old layouts lack the keys).
"""

import dataclasses

import pytest

from repro.common.errors import ConfigError
from repro.core.batch import BatchCmpSystem
from repro.core.cmp import CmpSystem, SimResult
from repro.core.compiled import CompiledCmpSystem
from repro.core.reference import ReferenceCmpSystem
from repro.experiments.runner import (
    AUTO_CORE_BY_SCHEME,
    AUTO_DEFAULT_CORE,
    SIM_CORES,
    RunPlan,
    make_system,
    resolve_auto_core,
)
from repro.scenario.model import plan_from_dict, plan_to_dict
from repro.scenario.run import EngineOptions, scenario_from_flags


class TestRunPlanFields:
    def test_defaults(self):
        plan = RunPlan()
        assert plan.sim_core == "auto"
        assert plan.max_events is None

    def test_sim_core_validated(self):
        for core in SIM_CORES:
            assert RunPlan(sim_core=core).sim_core == core
        with pytest.raises(ValueError, match="sim_core"):
            RunPlan(sim_core="warp")

    def test_max_events_validated(self):
        assert RunPlan(max_events=1).max_events == 1
        with pytest.raises(ValueError, match="max_events"):
            RunPlan(max_events=0)


class TestPlanSerde:
    def test_defaults_omitted(self):
        # Pre-knob scenario dumps must stay byte-identical.
        d = plan_to_dict(RunPlan())
        assert "sim_core" not in d and "max_events" not in d

    def test_round_trip(self):
        plan = RunPlan(sim_core="batch", max_events=5_000)
        d = plan_to_dict(plan)
        assert d["sim_core"] == "batch" and d["max_events"] == 5_000
        assert plan_from_dict(d) == plan

    def test_legacy_dict_parses(self):
        plan = plan_from_dict({"n_accesses": 100, "target_instructions": 1_000})
        assert plan.sim_core == "auto" and plan.max_events is None

    def test_bad_values_rejected_with_path(self):
        with pytest.raises(ConfigError, match="sim_core"):
            plan_from_dict({"sim_core": "warp"})
        with pytest.raises(ConfigError, match="max_events"):
            plan_from_dict({"max_events": -1})


class TestExperimentIdentity:
    def test_sim_core_excluded_from_content_hash(self):
        scenario = scenario_from_flags(scale="tiny", seed=7, mix="c4_0")
        rehomed = dataclasses.replace(
            scenario, plan=dataclasses.replace(scenario.plan, sim_core="batch")
        )
        assert scenario.content_hash() == rehomed.content_hash()

    def test_max_events_included_in_content_hash(self):
        scenario = scenario_from_flags(scale="tiny", seed=7, mix="c4_0")
        capped = dataclasses.replace(
            scenario, plan=dataclasses.replace(scenario.plan, max_events=123)
        )
        assert scenario.content_hash() != capped.content_hash()

    def test_sim_core_excluded_from_store_manifest(self):
        from repro.common.config import tiny_config
        from repro.engine.runner import ParallelRunner

        config = tiny_config(seed=7)
        manifests = [
            ParallelRunner(
                config, RunPlan(sim_core=core), jobs=0
            )._manifest()
            for core in ("batch", "reference")
        ]
        assert manifests[0] == manifests[1]
        assert "sim_core" not in manifests[0]["plan"]
        assert "max_events" in manifests[0]["plan"]


class TestAutoSelectionTable:
    """``auto`` resolves per scheme from the measured table, never to batch.

    The batched core regresses l2s to 0.60x on the paper's miss-heavy mixes,
    which is the bug the table exists to fix: every scheme with a compiled
    kernel lands on it, everything else (``snug_intra``, unknown names)
    lands on the fast scalar loop.
    """

    def test_every_registered_scheme_resolves(self):
        from repro.schemes.factory import SCHEMES

        expected = {
            "l2p": "compiled",
            "l2s": "compiled",
            "cc": "compiled",
            "dsr": "compiled",
            "snug": "compiled",
            "snug_intra": "fast",
        }
        assert set(expected) == set(SCHEMES)
        for name, core in expected.items():
            assert resolve_auto_core(name) == core, name

    def test_unknown_scheme_gets_default(self):
        assert resolve_auto_core("out_of_tree") == AUTO_DEFAULT_CORE == "fast"

    def test_table_never_selects_batch(self):
        # The l2s regression guard: no scheme may auto-resolve to batch.
        assert "batch" not in AUTO_CORE_BY_SCHEME.values()
        assert AUTO_DEFAULT_CORE != "batch"

    def test_table_only_names_real_cores(self):
        for core in {*AUTO_CORE_BY_SCHEME.values(), AUTO_DEFAULT_CORE}:
            assert core in SIM_CORES and core != "auto"

    def test_auto_dispatches_through_table(self):
        from repro.common.config import tiny_config
        from repro.schemes.factory import make_scheme
        from repro.workloads.mixes import build_mix_traces, get_mix

        config = tiny_config(seed=7)
        traces = build_mix_traces(get_mix("c4_0"), config.l2.num_sets, 200, 0)
        by_core = {"compiled": CompiledCmpSystem, "fast": CmpSystem}
        for name in ("l2p", "l2s", "cc", "dsr", "snug", "snug_intra"):
            scheme = make_scheme(name, config)
            system = make_system("auto", config, scheme, list(traces))
            assert type(system) is by_core[resolve_auto_core(name)], name


class TestDispatch:
    def test_make_system_selects_core(self):
        from repro.common.config import tiny_config
        from repro.schemes.l2p import PrivateL2
        from repro.workloads.mixes import build_mix_traces, get_mix

        config = tiny_config(seed=7)
        traces = build_mix_traces(get_mix("c4_0"), config.l2.num_sets, 200, 0)
        expected = {
            "auto": CompiledCmpSystem,  # l2p sits in the selection table
            "fast": CmpSystem,
            "batch": BatchCmpSystem,
            "compiled": CompiledCmpSystem,
            "reference": ReferenceCmpSystem,
        }
        assert set(expected) == set(SIM_CORES)
        for name, cls in expected.items():
            system = make_system(name, config, PrivateL2(config), list(traces))
            assert type(system) is cls
        with pytest.raises(ConfigError, match="sim_core"):
            make_system("warp", config, PrivateL2(config), list(traces))


class TestEngineOptions:
    def test_sim_core_and_profile_do_not_request_engine(self):
        assert not EngineOptions(sim_core="batch", profile="x.pstats").engine_requested
        assert EngineOptions(jobs=2).engine_requested

    def test_cli_flags_reach_options(self):
        from repro.cli import build_parser, _engine_options

        args = build_parser().parse_args(
            ["scenario", "run", "smoke-tiny",
             "--sim-core", "batch", "--profile", "out.pstats"]
        )
        options = _engine_options(args)
        assert options.sim_core == "batch"
        assert options.profile == "out.pstats"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["scenario", "run", "smoke-tiny", "--sim-core", "warp"]
            )


class TestSimResultLegacyPayloads:
    def test_from_dict_tolerates_missing_window_metrics(self):
        payload = {
            "scheme": "l2p",
            "ipc": [0.5, 0.5],
            "instructions": [100, 100],
            "cycles": [200, 200],
            "accesses": [10, 10],
            "outcome_counts": {"local_hit": 20},
            "stats": {"slice_0.hits": 20},
        }
        result = SimResult.from_dict(payload)
        assert result.window_outcomes == []
        assert result.window_latency == []
        # Round-trips forward into the modern shape.
        assert SimResult.from_dict(result.to_dict()) == result
