"""Unit tests for the bulk-access protocol primitives behind the batched core.

The batched core's correctness rests on two commit primitives being
semantically identical to sequential scalar stepping:

* :func:`repro.schemes.base.bulk_touch_sets` — recency-committing a run of
  local hits must leave every LRU set exactly as the equivalent sequence of
  ``touch()`` calls (plus dirty-bit ORs) would, for list and ndarray inputs
  and on both the short-run scalar path and the vectorized path;
* :meth:`repro.schemes.l2s.SharedL2.bulk_commit_interleaved` — committing a
  globally ``(issue_time, core_id)``-ordered hit sequence must reproduce
  the scalar ``access()`` loop's bank states, hit counters and snoop
  tallies on both its scalar (≤48) and vectorized paths.

Whole-system bit-identicality is pinned separately by
``tests/integration/test_batch_conformance.py``; these tests localize a
protocol regression to the primitive that broke.
"""

import numpy as np
import pytest

from tests.helpers import tiny_system

from repro.cache.block import CacheLine
from repro.schemes.base import bulk_touch_sets
from repro.schemes.l2p import PrivateL2
from repro.schemes.l2s import SharedL2


def set_states(cache):
    """Per-set (addr, dirty) rows, MRU first — the full observable state."""
    return [
        [(line.addr, line.dirty) for line in lruset._lines]
        for lruset in cache.sets
    ]


def filled_slice():
    """A fully-populated l2p slice (every set holds tags 0..assoc-1)."""
    scheme = PrivateL2(tiny_system())
    cache = scheme.slices[0]
    for a in range(len(cache.sets) * cache.sets[0].assoc):
        cache.fill(CacheLine(addr=a, dirty=False, owner=0))
    return cache


class TestBulkTouchSets:
    @pytest.mark.parametrize("n", [5, 200])  # scalar (<=24) and numpy paths
    @pytest.mark.parametrize("as_list", [True, False])
    def test_matches_sequential_touches(self, n, as_list):
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 64, size=n).tolist()
        writes = (rng.random(n) < 0.3).tolist()

        expected = filled_slice()
        for a, w in zip(addrs, writes):
            line = expected.sets[a & expected._index_mask].touch(a)
            assert line is not None
            if w:
                line.dirty = True

        actual = filled_slice()
        if as_list:
            bulk_touch_sets(actual, list(addrs), list(writes))
        else:
            bulk_touch_sets(
                actual, np.asarray(addrs, dtype=np.int64), np.asarray(writes)
            )
        assert set_states(actual) == set_states(expected)

    def test_membership_and_epoch_untouched(self):
        cache = filled_slice()
        epoch = cache.membership_epoch
        before = {frozenset(s._addrs) for s in cache.sets}
        bulk_touch_sets(cache, list(range(40)), [True] * 40)
        assert cache.membership_epoch == epoch
        assert {frozenset(s._addrs) for s in cache.sets} == before


def filled_l2s():
    """A SharedL2 whose banks all hold local addresses 0..63 (via misses)."""
    scheme = SharedL2(tiny_system())
    now = 0
    for a in range(256):
        now += scheme.access(a & 3, a, False, now).latency + 1
    return scheme


class TestBulkCommitInterleaved:
    @pytest.mark.parametrize("n", [20, 120])  # scalar (<=48) and numpy paths
    def test_matches_scalar_access_loop(self, n):
        rng = np.random.default_rng(11)
        addrs = rng.integers(0, 256, size=n).tolist()
        cids = rng.integers(0, 4, size=n).tolist()
        writes = (rng.random(n) < 0.25).tolist()

        expected = filled_l2s()
        now = 10_000
        for cid, a, w in zip(cids, addrs, writes):
            result = expected.access(cid, a, w, now)
            assert result.outcome.value.endswith("hit")
            now += result.latency + 1

        actual = filled_l2s()
        actual.bulk_commit_interleaved(cids, addrs, writes)

        for bank_e, bank_a in zip(expected.banks, actual.banks):
            assert set_states(bank_a) == set_states(bank_e)
        assert actual.flat_stats() == expected.flat_stats()

    def test_single_core_bulk_commit_delegates(self):
        rng = np.random.default_rng(5)
        addrs = rng.integers(0, 256, size=30).tolist()
        writes = (rng.random(30) < 0.5).tolist()

        expected = filled_l2s()
        expected.bulk_commit_interleaved([2] * 30, list(addrs), list(writes))
        actual = filled_l2s()
        actual.bulk_commit(2, np.asarray(addrs, dtype=np.int64), np.asarray(writes))
        for bank_e, bank_a in zip(expected.banks, actual.banks):
            assert set_states(bank_a) == set_states(bank_e)
        assert actual.flat_stats() == expected.flat_stats()
