"""Unit tests for the compiled (SoA + typed-kernel) core's plumbing.

Whole-system bit-identicality is pinned by
``tests/integration/test_batch_conformance.py`` and the golden suites;
this file localizes regressions in the machinery *around* the kernels:

* tier reporting (``kernel_mode`` / ``numba_active``) stays consistent
  with what actually runs;
* dispatch falls back to the generic loop for schemes without a kernel
  (``snug_intra``) and refuses bad run sizing with the same messages as
  :class:`~repro.core.cmp.CmpSystem`;
* the cProfile execution-phase dump attributes kernel time to a frame
  named ``compiled_kernel__<scheme>`` — without the named wrapper the hot
  path shows up as one anonymous driver (or vanishes into an njit
  dispatcher) and ``--profile`` cannot say where the time went.
"""

import cProfile
import pstats

import pytest

from repro.common.config import tiny_config
from repro.core import compiled
from repro.core.cmp import CmpSystem
from repro.core.compiled import CompiledCmpSystem, kernel_mode, numba_active
from repro.schemes.factory import make_scheme
from repro.workloads.mixes import build_mix_traces, get_mix


def build(scheme_name):
    cfg = tiny_config(seed=7)
    traces = build_mix_traces(get_mix("c4_0"), cfg.l2.num_sets, 1_000, seed=0)
    return cfg, make_scheme(scheme_name, cfg), list(traces)


class TestTierReporting:
    def test_kernel_mode_names_a_real_tier(self):
        assert kernel_mode() in ("jit", "compiled-c", "interpreted")

    def test_mode_consistent_with_numba_flag(self):
        if numba_active():
            assert kernel_mode() == "jit"
        else:
            assert kernel_mode() in ("compiled-c", "interpreted")


class TestDispatchEdges:
    def test_snug_intra_falls_back_to_generic_loop(self):
        # No kernel for snug_intra (exact-type dispatch): the compiled
        # system must run it through the inherited loop, bit-identically.
        cfg, scheme, traces = build("snug_intra")
        res = CompiledCmpSystem(cfg, scheme, traces).run(
            10_000, warmup_instructions=1_000
        )
        ref = CmpSystem(cfg, make_scheme("snug_intra", cfg), list(traces)).run(
            10_000, warmup_instructions=1_000
        )
        assert res.to_dict() == ref.to_dict()

    def test_run_sizing_validated(self):
        from repro.common.errors import SimulationError

        cfg, scheme, traces = build("l2p")
        system = CompiledCmpSystem(cfg, scheme, traces)
        with pytest.raises(SimulationError, match="target_instructions"):
            system.run(0)
        with pytest.raises(SimulationError, match="warmup_instructions"):
            system.run(1_000, warmup_instructions=-1)


class TestProfileLabeling:
    @pytest.mark.parametrize("scheme_name", ["l2p", "cc"])
    def test_kernel_time_appears_under_named_frame(self, scheme_name):
        cfg, scheme, traces = build(scheme_name)
        system = CompiledCmpSystem(cfg, scheme, traces)
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            system.run(10_000, warmup_instructions=1_000)
        finally:
            profiler.disable()
        stats = pstats.Stats(profiler)
        names = {func[2] for func in stats.stats}
        assert f"compiled_kernel__{scheme_name}" in names

    def test_profile_dump_file_contains_kernel_row(self, tmp_path):
        # The CLI --profile path: dump_stats + pstats.Stats(path) must
        # surface the same named row the operator greps for.
        cfg, scheme, traces = build("l2s")
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            CompiledCmpSystem(cfg, scheme, traces).run(10_000)
        finally:
            profiler.disable()
        path = tmp_path / "exec.pstats"
        profiler.dump_stats(path)
        names = {func[2] for func in pstats.Stats(str(path)).stats}
        assert "compiled_kernel__l2s" in names

    def test_named_entry_wraps_without_changing_behavior(self):
        entry = compiled._named_entry("compiled_kernel__probe", lambda a, b: a + b)
        assert entry.__name__ == "compiled_kernel__probe"
        assert entry(2, 3) == 5
