"""Unit tests for repro.workloads.trace."""

import numpy as np
import pytest

from repro.common.errors import TraceError
from repro.mem.address import core_address_base
from repro.workloads.trace import Trace


def mk(gaps=(1, 2, 3), addrs=(10, 20, 10), writes=(0, 1, 0)):
    return Trace(np.array(gaps), np.array(addrs), np.array(writes, dtype=bool), name="t")


class TestValidation:
    def test_valid(self):
        t = mk()
        assert len(t) == 3

    def test_length_mismatch(self):
        with pytest.raises(TraceError):
            Trace(np.array([1]), np.array([1, 2]), np.array([True, False]))

    def test_empty(self):
        with pytest.raises(TraceError):
            Trace(np.array([]), np.array([]), np.array([], dtype=bool))

    def test_zero_gap_rejected(self):
        with pytest.raises(TraceError):
            mk(gaps=(0, 1, 1))

    def test_negative_addr_rejected(self):
        with pytest.raises(TraceError):
            mk(addrs=(-1, 2, 3))


class TestDerived:
    def test_instructions(self):
        assert mk().instructions == 6

    def test_footprint(self):
        assert mk().footprint_blocks == 2
        assert mk().footprint_bytes(64) == 128

    def test_write_fraction(self):
        assert mk().write_fraction == pytest.approx(1 / 3)

    def test_apki(self):
        assert mk().accesses_per_kilo_instruction() == pytest.approx(500.0)

    def test_set_histogram(self):
        t = mk(addrs=(0, 4, 8))
        h = t.set_histogram(4)
        assert h[0] == 3

    @pytest.mark.parametrize("bad", [0, -4, 3, 6, 12])
    def test_set_histogram_rejects_non_pow2(self, bad):
        # The index mask `addrs & (num_sets - 1)` is a modulo only for
        # positive powers of two; anything else silently mis-bins.
        with pytest.raises(TraceError):
            mk().set_histogram(bad)

    def test_set_histogram_pow2_counts_sum_to_len(self):
        t = mk(addrs=(1, 5, 7))
        for num_sets in (1, 2, 4, 16):
            h = t.set_histogram(num_sets)
            assert h.sum() == len(t)
            assert len(h) == num_sets

    def test_as_lists_plain_python_scalars(self):
        gaps, addrs, writes = mk().as_lists()
        assert gaps == [1, 2, 3] and addrs == [10, 20, 10] and writes == [False, True, False]
        assert all(type(g) is int for g in gaps)
        assert all(type(a) is int for a in addrs)
        assert all(type(w) is bool for w in writes)


class TestTransforms:
    def test_rebase_offsets_addresses(self):
        t = mk()
        r = t.rebase(2)
        assert (r.addrs == t.addrs + core_address_base(2)).all()
        assert (r.gaps == t.gaps).all()

    def test_rebase_core0_identity_addresses(self):
        t = mk()
        assert (t.rebase(0).addrs == t.addrs).all()

    def test_head(self):
        assert len(mk().head(2)) == 2
        assert len(mk().head(10)) == 3
        with pytest.raises(TraceError):
            mk().head(0)

    def test_concat(self):
        t = mk().concat(mk())
        assert len(t) == 6

    def test_iteration(self):
        rows = list(mk())
        assert rows[0] == (1, 10, False)
        assert rows[1] == (2, 20, True)

    def test_immutable_arrays_shared_on_rebase(self):
        t = mk()
        r = t.rebase(1)
        assert r.gaps is t.gaps  # gaps unchanged -> shared, no copy
