"""Unit tests for repro.workloads.synthetic."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.workloads.synthetic import Band, Phase, WorkloadSpec, draw_demand_map, generate_trace


def simple_spec(**kw):
    defaults = dict(
        name="toy",
        phases=(Phase(bands=(Band(1.0, 4, 4),), random_frac=0.0, stream_frac=0.0),),
        write_fraction=0.0,
        mean_gap=5.0,
    )
    defaults.update(kw)
    return WorkloadSpec(**defaults)


class TestValidation:
    def test_band_bounds(self):
        with pytest.raises(ConfigError):
            Band(1.0, 0, 4)
        with pytest.raises(ConfigError):
            Band(1.0, 5, 4)
        with pytest.raises(ConfigError):
            Band(-1.0, 1, 4)

    def test_phase_fractions(self):
        with pytest.raises(ConfigError):
            Phase(bands=(Band(1, 1, 2),), stream_frac=0.6, random_frac=0.6)
        with pytest.raises(ConfigError):
            Phase(bands=())

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            simple_spec(write_fraction=2.0)
        with pytest.raises(ConfigError):
            simple_spec(mean_gap=0.5)
        with pytest.raises(ConfigError):
            WorkloadSpec(name="x", phases=())

    def test_generate_needs_positive_accesses(self):
        with pytest.raises(ConfigError):
            generate_trace(simple_spec(), 16, 0)


class TestDemandMap:
    def test_in_band_range(self):
        rng = np.random.default_rng(0)
        w = draw_demand_map((Band(1.0, 3, 7),), 64, rng)
        assert w.min() >= 3 and w.max() <= 7

    def test_band_weights_respected(self):
        rng = np.random.default_rng(0)
        w = draw_demand_map((Band(0.5, 1, 1), Band(0.5, 30, 30)), 4096, rng)
        low = (w == 1).mean()
        assert 0.45 < low < 0.55

    def test_all_sets_assigned(self):
        rng = np.random.default_rng(0)
        w = draw_demand_map((Band(0.3, 1, 4), Band(0.7, 17, 32)), 128, rng)
        assert len(w) == 128
        assert ((1 <= w) & (w <= 32)).all()


class TestGenerateTrace:
    def test_length_and_fields(self):
        t = generate_trace(simple_spec(), 16, 500, seed=1)
        assert len(t) == 500
        assert (t.gaps >= 1).all()

    def test_deterministic_per_seed(self):
        a = generate_trace(simple_spec(), 16, 200, seed=5)
        b = generate_trace(simple_spec(), 16, 200, seed=5)
        assert (a.addrs == b.addrs).all()

    def test_different_seeds_differ(self):
        a = generate_trace(simple_spec(), 16, 200, seed=5)
        b = generate_trace(simple_spec(), 16, 200, seed=6)
        assert not (a.addrs == b.addrs).all()

    def test_demand_map_shared_across_seeds(self):
        """Instance seed must not change the intrinsic per-set demand."""
        spec = WorkloadSpec(
            name="shared",
            phases=(Phase(bands=(Band(0.5, 1, 2), Band(0.5, 8, 10)), random_frac=0.0),),
        )
        a = generate_trace(spec, 16, 4000, seed=1)
        b = generate_trace(spec, 16, 4000, seed=2)
        # Per-set footprints (distinct blocks) should agree (same W map).
        for s in range(16):
            fa = np.unique(a.addrs[(a.addrs % 16) == s]).size
            fb = np.unique(b.addrs[(b.addrs % 16) == s]).size
            assert abs(fa - fb) <= 1

    def test_cyclic_working_set_size(self):
        """Pure cyclic: per-set distinct blocks == W exactly."""
        spec = simple_spec()  # W=4 cyclic
        t = generate_trace(spec, 8, 4000, seed=0)
        for s in range(8):
            blocks = np.unique(t.addrs[(t.addrs % 8) == s])
            assert len(blocks) == 4

    def test_streaming_never_repeats(self):
        spec = WorkloadSpec(
            name="stream",
            phases=(Phase(bands=(Band(1.0, 1, 1),), stream_frac=1.0, random_frac=0.0),),
        )
        t = generate_trace(spec, 4, 1000, seed=0)
        assert np.unique(t.addrs).size == 1000

    def test_write_fraction_approximate(self):
        t = generate_trace(simple_spec(write_fraction=0.3), 16, 5000, seed=0)
        assert 0.25 < t.write_fraction < 0.35

    def test_mean_gap_approximate(self):
        t = generate_trace(simple_spec(mean_gap=20.0), 16, 5000, seed=0)
        assert 18 < t.gaps.mean() < 22

    def test_phases_concatenate(self):
        spec = WorkloadSpec(
            name="ph",
            phases=(
                Phase(bands=(Band(1, 1, 1),), duration=0.5, random_frac=0.0),
                Phase(bands=(Band(1, 8, 8),), duration=0.5, random_frac=0.0),
            ),
        )
        t = generate_trace(spec, 8, 2000, seed=0)
        assert len(t) == 2000
        first = np.unique(t.addrs[:900]).size
        second = np.unique(t.addrs[1100:]).size
        assert second > first  # bigger working set in phase 2

    def test_mean_demand_and_footprint(self):
        spec = WorkloadSpec(
            name="fp",
            phases=(Phase(bands=(Band(0.5, 2, 2), Band(0.5, 10, 10)),),),
        )
        assert spec.mean_demand(64) == pytest.approx(6.0)
        assert spec.footprint_bytes(64, 64) == pytest.approx(6.0 * 64 * 64)
