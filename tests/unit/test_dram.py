"""Unit tests for repro.mem.dram."""

from repro.common.config import DramConfig
from repro.mem.dram import Dram


class TestFlatDram:
    def test_fixed_latency(self):
        dram = Dram(DramConfig(latency=300))
        assert dram.access(0, now=0) == 300
        assert dram.access(12345, now=999) == 300

    def test_counts_reads_and_writes(self):
        dram = Dram()
        dram.access(0, 0)
        dram.access(1, 1, is_write=True)
        assert dram.stats.get("reads") == 1
        assert dram.stats.get("writes") == 1

    def test_reset(self):
        dram = Dram()
        dram.access(0, 0)
        dram.reset()
        assert dram.stats.get("reads") == 0


class TestBankedDram:
    def cfg(self):
        return DramConfig(latency=100, num_banks=2, bank_busy_cycles=50, model_banks=True)

    def test_no_conflict_when_spread(self):
        dram = Dram(self.cfg())
        assert dram.access(0, now=0) == 100  # bank 0
        assert dram.access(1, now=0) == 100  # bank 1

    def test_same_bank_conflict_queues(self):
        dram = Dram(self.cfg())
        assert dram.access(0, now=0) == 100
        # Second access to bank 0 at t=0 waits 50 cycles for the busy window.
        assert dram.access(2, now=0) == 150
        assert dram.stats.get("bank_conflicts") == 1

    def test_conflict_clears_after_busy_window(self):
        dram = Dram(self.cfg())
        dram.access(0, now=0)
        assert dram.access(2, now=60) == 100  # bank free again

    def test_busy_cycles_accumulate(self):
        dram = Dram(self.cfg())
        dram.access(0, 0)
        assert dram.stats.get("busy_cycles") == 100
