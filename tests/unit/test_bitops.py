"""Unit tests for repro.common.bitops."""

import pytest

from repro.common.bitops import (
    align_down,
    align_up,
    extract_bits,
    flip_bit,
    is_pow2,
    log2_exact,
    mask,
)
from repro.common.errors import ConfigError


class TestIsPow2:
    def test_powers_of_two(self):
        for k in range(20):
            assert is_pow2(1 << k)

    def test_non_powers(self):
        for v in (0, 3, 5, 6, 7, 9, 12, 100, 1000):
            assert not is_pow2(v)

    def test_negative(self):
        assert not is_pow2(-4)
        assert not is_pow2(-1)


class TestLog2Exact:
    def test_exact_values(self):
        assert log2_exact(1) == 0
        assert log2_exact(2) == 1
        assert log2_exact(1024) == 10
        assert log2_exact(1 << 20) == 20

    def test_rejects_non_power(self):
        with pytest.raises(ConfigError):
            log2_exact(3)

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            log2_exact(0)

    def test_error_mentions_name(self):
        with pytest.raises(ConfigError, match="num_sets"):
            log2_exact(7, what="num_sets")


class TestMask:
    def test_values(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(32) == 0xFFFFFFFF

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            mask(-1)


class TestExtractBits:
    def test_low_bits(self):
        assert extract_bits(0b101101, 0, 3) == 0b101

    def test_mid_bits(self):
        assert extract_bits(0b101101, 2, 3) == 0b011

    def test_beyond_value(self):
        assert extract_bits(0b1, 5, 4) == 0


class TestFlipBit:
    def test_flip_low(self):
        assert flip_bit(0b1010, 0) == 0b1011
        assert flip_bit(0b1011, 0) == 0b1010

    def test_involution(self):
        for v in (0, 1, 5, 1023):
            for b in range(6):
                assert flip_bit(flip_bit(v, b), b) == v

    def test_pairs_adjacent_sets(self):
        # The paper's grouping: set s pairs with s ^ 1.
        assert flip_bit(6, 0) == 7
        assert flip_bit(7, 0) == 6


class TestAlign:
    def test_align_down(self):
        assert align_down(65, 64) == 64
        assert align_down(64, 64) == 64
        assert align_down(63, 64) == 0

    def test_align_up(self):
        assert align_up(65, 64) == 128
        assert align_up(64, 64) == 64
        assert align_up(1, 64) == 64

    def test_bad_alignment(self):
        with pytest.raises(ConfigError):
            align_down(10, 3)
        with pytest.raises(ConfigError):
            align_up(10, 0)
