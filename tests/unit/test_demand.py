"""Unit tests for repro.analysis.demand (Formulas 1-5)."""

import numpy as np
import pytest

from repro.analysis.demand import (
    DemandDistribution,
    bucket_bounds,
    bucket_of,
    characterize_trace,
)
from repro.common.errors import ConfigError
from repro.workloads.spec2000 import make_benchmark_trace
from repro.workloads.trace import Trace


class TestBuckets:
    def test_paper_buckets(self):
        """A_threshold=32, M=8 gives {[1,4], [5,8], ..., [29,32]} (Sec. 2.2)."""
        bounds = bucket_bounds(32, 8)
        assert bounds[0] == (1, 4)
        assert bounds[1] == (5, 8)
        assert bounds[-1] == (29, 32)
        assert len(bounds) == 8

    def test_buckets_partition_range(self):
        bounds = bucket_bounds(32, 8)
        covered = [v for lo, hi in bounds for v in range(lo, hi + 1)]
        assert covered == list(range(1, 33))

    def test_bucket_of(self):
        assert bucket_of(1, 32, 8) == 0
        assert bucket_of(4, 32, 8) == 0
        assert bucket_of(5, 32, 8) == 1
        assert bucket_of(32, 32, 8) == 7
        assert bucket_of(100, 32, 8) == 7  # clipped

    def test_bucket_of_invalid(self):
        with pytest.raises(ValueError):
            bucket_of(0, 32, 8)

    def test_non_pow2_rejected(self):
        with pytest.raises(ConfigError):
            bucket_bounds(30, 8)
        with pytest.raises(ConfigError):
            bucket_bounds(32, 6)

    def test_more_buckets_than_range_rejected(self):
        with pytest.raises(ConfigError):
            bucket_bounds(8, 16)


def cyclic_trace(num_sets, w, n):
    """Every set cycles over w blocks."""
    addrs = []
    ptr = [0] * num_sets
    for i in range(n):
        s = i % num_sets
        addrs.append(ptr[s] * num_sets + s)
        ptr[s] = (ptr[s] + 1) % w
    return Trace(np.ones(n, dtype=int), np.array(addrs), np.zeros(n, dtype=bool), name="cyc")


class TestCharacterize:
    def test_rows_sum_to_one(self):
        t = make_benchmark_trace("gzip", 16, 6000, seed=0)
        dist = characterize_trace(t, 16, interval_accesses=1000)
        assert np.allclose(dist.sizes.sum(axis=1), 1.0)

    def test_known_cyclic_demand(self):
        t = cyclic_trace(8, w=6, n=8000)
        dist = characterize_trace(t, 8, interval_accesses=2000)
        # After warmup intervals, every set requires exactly 6 blocks.
        assert (dist.demand[-1] == 6).all()
        assert dist.sizes[-1][bucket_of(6, 32, 8)] == 1.0

    def test_streaming_demand_is_one(self):
        n = 4000
        addrs = np.arange(n)  # never reused
        t = Trace(np.ones(n, dtype=int), addrs, np.zeros(n, dtype=bool))
        dist = characterize_trace(t, 16, interval_accesses=1000)
        assert (dist.demand == 1).all()

    def test_interval_count(self):
        t = make_benchmark_trace("gzip", 16, 5500, seed=0)
        dist = characterize_trace(t, 16, interval_accesses=1000)
        assert dist.intervals == 5
        dist2 = characterize_trace(t, 16, interval_accesses=1000, max_intervals=3)
        assert dist2.intervals == 3

    def test_too_short_trace_rejected(self):
        t = cyclic_trace(4, 2, 10)
        with pytest.raises(ConfigError):
            characterize_trace(t, 4, interval_accesses=1000)

    def test_giver_taker_fractions(self):
        demand = np.array([[2, 2, 30, 30]])
        sizes = np.array([[0.5, 0, 0, 0, 0, 0, 0, 0.5]])
        dist = DemandDistribution("x", 32, 8, sizes, demand)
        assert dist.giver_fraction() == 0.5
        assert dist.taker_fraction() == 0.5
        assert dist.nonuniformity_score() == 0.5
        assert dist.is_non_uniform()

    def test_uniform_low_scores_zero(self):
        demand = np.full((3, 8), 2)
        sizes = np.zeros((3, 8))
        sizes[:, 0] = 1.0
        dist = DemandDistribution("applu-ish", 32, 8, sizes, demand)
        assert dist.taker_fraction() == 0.0
        assert not dist.is_non_uniform()

    def test_mean_sizes(self):
        sizes = np.array([[1.0] + [0.0] * 7, [0.0, 1.0] + [0.0] * 6])
        dist = DemandDistribution("m", 32, 8, sizes, np.ones((2, 4)))
        assert dist.mean_sizes()[0] == 0.5
        assert dist.mean_sizes()[1] == 0.5
