"""Unit tests for repro.core.cmp (CmpSystem event loop)."""

import numpy as np
import pytest

from tests.helpers import tiny_system

from repro.common.errors import SimulationError
from repro.core.cmp import CmpSystem
from repro.schemes.l2p import PrivateL2
from repro.workloads.spec2000 import make_benchmark_trace
from repro.workloads.trace import Trace


def traces_for(cfg, n=400, bench="gzip"):
    return [
        make_benchmark_trace(bench, cfg.l2.num_sets, n, seed=s).rebase(s)
        for s in range(cfg.num_cores)
    ]


class TestRun:
    def test_basic_run(self):
        cfg = tiny_system()
        res = CmpSystem(cfg, PrivateL2(cfg), traces_for(cfg)).run(5_000)
        assert res.scheme == "l2p"
        assert len(res.ipc) == 4
        assert all(0 < x <= 1.0 for x in res.ipc)
        assert all(i >= 5_000 for i in res.instructions)

    def test_wrong_trace_count(self):
        cfg = tiny_system()
        with pytest.raises(SimulationError):
            CmpSystem(cfg, PrivateL2(cfg), traces_for(cfg)[:2])

    def test_bad_target(self):
        cfg = tiny_system()
        sys_ = CmpSystem(cfg, PrivateL2(cfg), traces_for(cfg))
        with pytest.raises(SimulationError):
            sys_.run(0)

    def test_deterministic(self):
        cfg = tiny_system()
        r1 = CmpSystem(cfg, PrivateL2(cfg), traces_for(cfg)).run(5_000)
        r2 = CmpSystem(cfg, PrivateL2(cfg), traces_for(cfg)).run(5_000)
        assert r1.ipc == r2.ipc
        assert r1.outcome_counts == r2.outcome_counts

    def test_outcome_counts_total(self):
        cfg = tiny_system()
        res = CmpSystem(cfg, PrivateL2(cfg), traces_for(cfg)).run(3_000)
        assert sum(res.outcome_counts.values()) == sum(res.accesses)

    def test_event_budget_guard(self):
        cfg = tiny_system()
        sys_ = CmpSystem(cfg, PrivateL2(cfg), traces_for(cfg))
        with pytest.raises(SimulationError):
            sys_.run(10_000_000, max_events=10)

    def test_throughput_property(self):
        cfg = tiny_system()
        res = CmpSystem(cfg, PrivateL2(cfg), traces_for(cfg)).run(2_000)
        assert res.throughput == pytest.approx(sum(res.ipc))
        assert "l2p" in res.summary()


class TestWarmup:
    def test_warmup_improves_measured_ipc(self):
        """Warm caches beat cold-start measurement for reuse-heavy traces."""
        cfg = tiny_system()
        cold = CmpSystem(cfg, PrivateL2(cfg), traces_for(cfg)).run(4_000)
        warm = CmpSystem(cfg, PrivateL2(cfg), traces_for(cfg)).run(
            4_000, warmup_instructions=8_000
        )
        assert sum(warm.ipc) > sum(cold.ipc)

    def test_window_outcomes_exclude_warmup(self):
        cfg = tiny_system()
        res = CmpSystem(cfg, PrivateL2(cfg), traces_for(cfg)).run(
            2_000, warmup_instructions=2_000
        )
        for c in range(4):
            window_total = sum(res.window_outcomes[c].values())
            assert 0 < window_total < res.accesses[c]

    def test_negative_warmup_rejected(self):
        cfg = tiny_system()
        sys_ = CmpSystem(cfg, PrivateL2(cfg), traces_for(cfg))
        with pytest.raises(SimulationError):
            sys_.run(100, warmup_instructions=-1)


class TestGlobalTimeOrder:
    def test_scheme_sees_nondecreasing_now(self):
        cfg = tiny_system()

        seen = []

        class Spy(PrivateL2):
            def access(self, core, addr, w, now):
                seen.append(now)
                return super().access(core, addr, w, now)

        CmpSystem(cfg, Spy(cfg), traces_for(cfg)).run(3_000)
        assert all(a <= b for a, b in zip(seen, seen[1:]))
