"""Unit tests for the scheme factory."""

import pytest

from tests.helpers import tiny_system

from repro.common.errors import ConfigError
from repro.schemes.factory import SCHEMES, make_scheme, scheme_names


class TestFactory:
    def test_all_five_schemes(self):
        assert scheme_names() == ["l2p", "l2s", "cc", "dsr", "snug"]
        # The registry additionally carries the future-work extension.
        assert set(SCHEMES) == {*scheme_names(), "snug_intra"}

    def test_make_each(self):
        cfg = tiny_system()
        for name in SCHEMES:
            scheme = make_scheme(name, cfg)
            assert scheme.name == name

    def test_kwargs_forwarded(self):
        cfg = tiny_system()
        cc = make_scheme("cc", cfg, spill_probability=0.25)
        assert cc.spill_probability == 0.25

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_scheme("l3", tiny_system())
