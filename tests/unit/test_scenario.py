"""Unit tests for the declarative scenario layer.

Covers the ISSUE-5 contract: YAML/JSON round-trip identity, upfront
cross-field validation with dotted field paths in every error, content-hash
semantics (resolved inputs, cosmetic fields excluded), seeded workload
generation, and the bundled preset catalog.
"""

import pytest

from repro.common.errors import ConfigError
from repro.experiments.runner import RunPlan
from repro.scenario import (
    GeneratedMixSpec,
    ProgramMixSpec,
    Scenario,
    ScenarioGrid,
    SystemSpec,
    WorkloadSpec,
    expand_scenario_file,
    load_scenario_file,
    plan_for_scale,
    preset_names,
    preset_path,
    scenario_from_flags,
)


def tiny_scenario(**kwargs) -> Scenario:
    defaults = dict(
        name="t",
        system=SystemSpec(scale="tiny", seed=7),
        workload=WorkloadSpec(mixes=("c1_0",)),
        schemes=("l2p", "snug"),
        plan=RunPlan(n_accesses=1_000, target_instructions=10_000,
                     warmup_instructions=0, seed=7),
    )
    defaults.update(kwargs)
    return Scenario(**defaults)


class TestRoundTrip:
    def full_scenario(self) -> Scenario:
        """A scenario exercising every workload selector and an override."""
        return Scenario(
            name="full",
            description="round-trip fixture",
            system=SystemSpec(
                scale="tiny", seed=3,
                overrides={"snug": {"identify_cycles": 20_000},
                           "dsr": {"leader_sets_per_policy": 4}},
            ),
            workload=WorkloadSpec(
                classes=("C5",),
                combos_per_class=1,
                mixes=("c1_0",),
                programs=(ProgramMixSpec("mine", ("gzip", "swim", "mesa", "art")),),
                generated=(GeneratedMixSpec(count=2, slots=("A", "C", "D", "any"),
                                            seed=5, id_prefix="g"),),
            ),
            schemes=("l2p", "cc_best", "snug"),
            plan=RunPlan(n_accesses=2_000, target_instructions=20_000,
                         warmup_instructions=1_000, seed=9,
                         cc_probs=(0.0, 1.0), snug_monitor=True),
        )

    def test_yaml_round_trip_identity(self):
        s = self.full_scenario()
        text = s.dumps()
        s2 = Scenario.loads(text)
        assert s2 == s
        assert s2.dumps() == text  # dump is stable, not just equal

    def test_json_round_trip_identity(self):
        s = self.full_scenario()
        s2 = Scenario.loads(s.dumps("json"), "json")
        assert s2 == s
        assert s2.content_hash() == s.content_hash()

    def test_file_round_trip(self, tmp_path):
        s = self.full_scenario()
        path = tmp_path / "s.yaml"
        s.dump(path)
        assert Scenario.load(path) == s
        jpath = tmp_path / "s.json"
        s.dump(jpath)
        assert Scenario.load(jpath) == s

    def test_to_dict_is_json_native(self):
        import json

        json.dumps(self.full_scenario().to_dict())  # must not raise


class TestValidationPaths:
    """Every rejection names the offending dotted field path."""

    def loads(self, text: str):
        return Scenario.loads(text)

    def test_unknown_top_level_key(self):
        with pytest.raises(ConfigError, match="bogus"):
            self.loads("scenario: 1\nname: x\nbogus: 1\nworkload: {mixes: [c1_0]}\n")

    def test_unknown_scheme_with_index(self):
        with pytest.raises(ConfigError, match=r"schemes\[1\].*lru"):
            tiny_scenario(schemes=("l2p", "lru"))

    def test_bad_mix_id_with_index(self):
        with pytest.raises(ConfigError, match=r"workload\.mixes\[0\]"):
            self.loads("scenario: 1\nname: x\nworkload: {mixes: [c9_9]}\n")

    def test_bad_benchmark_in_programs(self):
        with pytest.raises(ConfigError, match=r"workload\.programs\[0\]\.programs\[2\]"):
            self.loads(
                "scenario: 1\nname: x\n"
                "workload: {programs: [{id: m, programs: [gzip, swim, doom3, art]}]}\n"
            )

    def test_non_pow2_geometry_has_system_path(self):
        with pytest.raises(ConfigError, match=r"system\.l2.*power of two"):
            self.loads(
                "scenario: 1\nname: x\nworkload: {mixes: [c1_0]}\n"
                "system: {scale: tiny, overrides: {l2: {size_bytes: 5000}}}\n"
            )

    def test_unknown_override_field_rejected(self):
        with pytest.raises(ConfigError, match=r"system\.overrides\.l2.*ways"):
            self.loads(
                "scenario: 1\nname: x\nworkload: {mixes: [c1_0]}\n"
                "system: {overrides: {l2: {ways: 8}}}\n"
            )

    def test_epoch_ratio_cross_field(self):
        with pytest.raises(ConfigError, match=r"system\.snug.*identify_cycles"):
            self.loads(
                "scenario: 1\nname: x\nworkload: {mixes: [c1_0]}\n"
                "system: {scale: tiny, overrides: "
                "{snug: {identify_cycles: 500000, group_cycles: 400000}}}\n"
            )

    def test_cc_probs_out_of_range_with_index(self):
        with pytest.raises(ConfigError, match=r"plan\.cc_probs\[1\]"):
            self.loads(
                "scenario: 1\nname: x\nworkload: {mixes: [c1_0]}\n"
                "plan: {cc_probs: [0.0, 1.5]}\n"
            )

    def test_cc_probs_percent_collision(self):
        with pytest.raises(ConfigError, match=r"plan\.cc_probs.*1%"):
            self.loads(
                "scenario: 1\nname: x\nworkload: {mixes: [c1_0]}\n"
                "plan: {cc_probs: [0.501, 0.502]}\n"
            )

    def test_empty_workload_rejected(self):
        with pytest.raises(ConfigError, match="workload"):
            self.loads("scenario: 1\nname: x\nworkload: {}\n")

    def test_combos_per_class_requires_classes(self):
        with pytest.raises(ConfigError, match="combos_per_class"):
            self.loads(
                "scenario: 1\nname: x\nworkload: {mixes: [c1_0], combos_per_class: 2}\n"
            )

    def test_duplicate_resolved_mix_ids(self):
        with pytest.raises(ConfigError, match="duplicate mix id"):
            self.loads(
                "scenario: 1\nname: x\nworkload: {classes: [C1], mixes: [c1_0]}\n"
            )

    def test_schema_version_guard(self):
        with pytest.raises(ConfigError, match="version"):
            self.loads("scenario: 99\nname: x\nworkload: {mixes: [c1_0]}\n")

    def test_not_a_scenario_file(self, tmp_path):
        path = tmp_path / "nope.yaml"
        path.write_text("just: stuff\n")
        with pytest.raises(ConfigError, match="scenario: 1"):
            load_scenario_file(path)

    def test_program_count_vs_num_cores(self):
        with pytest.raises(ConfigError, match="num_cores"):
            self.loads(
                "scenario: 1\nname: x\n"
                "workload: {programs: [{id: m, programs: [gzip, swim]}]}\n"
            )

    def test_bool_rejected_where_int_expected(self):
        with pytest.raises(ConfigError, match=r"plan\.n_accesses"):
            self.loads(
                "scenario: 1\nname: x\nworkload: {mixes: [c1_0]}\n"
                "plan: {n_accesses: true}\n"
            )

    def test_unknown_scale(self):
        with pytest.raises(ConfigError, match=r"system\.scale"):
            self.loads(
                "scenario: 1\nname: x\nworkload: {mixes: [c1_0]}\n"
                "system: {scale: huge}\n"
            )

    def test_generated_unknown_pool(self):
        with pytest.raises(ConfigError, match=r"workload\.generated\[0\]\.slots\[1\]"):
            self.loads(
                "scenario: 1\nname: x\n"
                "workload: {generated: [{count: 1, slots: [A, Z, C, D]}]}\n"
            )


class TestContentHash:
    def test_name_and_description_are_cosmetic(self):
        a = tiny_scenario(name="a", description="one")
        b = tiny_scenario(name="b", description="two")
        assert a.content_hash() == b.content_hash()

    def test_plan_change_changes_hash(self):
        a = tiny_scenario()
        b = tiny_scenario(plan=RunPlan(n_accesses=1_000, target_instructions=10_000,
                                       warmup_instructions=0, seed=8))
        assert a.content_hash() != b.content_hash()

    def test_spelling_independence(self):
        """scale alias vs the equivalent explicit overrides hash identically."""
        import dataclasses

        from repro.common.config import tiny_config

        cfg = tiny_config(seed=7)
        explicit = SystemSpec(
            scale="small", seed=7,
            overrides={
                "l2": dataclasses.asdict(cfg.l2),
                "snug": dataclasses.asdict(cfg.snug),
                "dsr": dataclasses.asdict(cfg.dsr),
            },
        )
        assert explicit.build() == cfg
        assert (tiny_scenario(system=explicit).content_hash()
                == tiny_scenario().content_hash())

    def test_mix_alias_independence(self):
        """A registered mix id and its expanded program list hash equally."""
        from repro.workloads.mixes import get_mix

        mix = get_mix("c1_0")
        spelled = WorkloadSpec(programs=(
            ProgramMixSpec(mix.mix_id, mix.programs, mix.mix_class),
        ))
        assert (tiny_scenario(workload=spelled).content_hash()
                == tiny_scenario().content_hash())


class TestGeneratedMixes:
    def test_deterministic(self):
        spec = GeneratedMixSpec(count=4, slots=("A", "C", "D", "any"), seed=13)
        first = [(m.mix_id, m.programs) for m in spec.resolve()]
        again = [(m.mix_id, m.programs) for m in spec.resolve()]
        assert first == again

    def test_seed_changes_draws(self):
        base = GeneratedMixSpec(count=8, slots=("any",) * 4, seed=1)
        other = GeneratedMixSpec(count=8, slots=("any",) * 4, seed=2)
        assert ([m.programs for m in base.resolve()]
                != [m.programs for m in other.resolve()])

    def test_slots_draw_from_their_pools(self):
        from repro.scenario.workload import CLASS_POOLS

        spec = GeneratedMixSpec(count=6, slots=("A", "B", "C", "D"), seed=3)
        for mix in spec.resolve():
            for prog, slot in zip(mix.programs, ("A", "B", "C", "D")):
                assert prog in CLASS_POOLS[slot]


class TestFlagAdapter:
    def test_matches_smoke_preset(self):
        flag = scenario_from_flags(scale="tiny", seed=7,
                                   classes=["C5"], combos_per_class=1)
        preset = load_scenario_file(preset_path("smoke-tiny"))
        assert flag.content_hash() == preset.content_hash()

    def test_plan_for_scale_matches_sizing(self):
        plan = plan_for_scale("small", 7)
        assert (plan.n_accesses, plan.target_instructions,
                plan.warmup_instructions) == (25_000, 300_000, 300_000)
        with pytest.raises(ConfigError):
            plan_for_scale("huge", 7)

    def test_custom_programs(self):
        s = scenario_from_flags(scale="tiny", seed=7,
                                programs=["gzip", "swim", "mesa", "art"])
        [mix] = s.build_mixes()
        assert mix.mix_id == "custom"
        assert mix.programs == ("gzip", "swim", "mesa", "art")


class TestPresets:
    def test_catalog_non_empty(self):
        assert {"smoke-tiny", "fig9-11-small", "fig9-11-paper"} <= set(preset_names())

    @pytest.mark.parametrize("name", sorted(preset_names()))
    def test_every_preset_validates(self, name):
        scenarios = expand_scenario_file(preset_path(name))
        assert scenarios
        for scenario in scenarios:
            assert scenario.build_mixes()
            assert len(scenario.content_hash()) == 64

    def test_unknown_preset_listed(self):
        with pytest.raises(ConfigError, match="smoke-tiny"):
            preset_path("nope")


class TestRunComboScenario:
    def test_single_mix_scenario_runs(self):
        from repro.experiments.runner import run_combo

        s = tiny_scenario(schemes=("l2p",))
        combo = run_combo(s)
        assert combo.mix_id == "c1_0"
        assert set(combo.results) == {"l2p"}

    def test_multi_mix_scenario_rejected(self):
        from repro.experiments.runner import run_combo

        s = tiny_scenario(workload=WorkloadSpec(mixes=("c1_0", "c1_1")))
        with pytest.raises(ConfigError, match="single-mix"):
            run_combo(s)

    def test_scenario_plus_config_rejected(self):
        from repro.common.config import tiny_config
        from repro.experiments.runner import run_combo

        with pytest.raises(ConfigError, match="not both"):
            run_combo(tiny_scenario(), tiny_config())


class TestGrid:
    GRID = """\
grid: 1
name: g
base:
  system: {scale: tiny, seed: 7}
  workload: {mixes: [c1_0]}
  schemes: [l2p]
  plan: {n_accesses: 1000, target_instructions: 10000, warmup_instructions: 0}
axes:
  plan.seed: [1, 2]
  system.overrides.snug.identify_cycles: [15000, 30000]
"""

    def test_expansion_applies_axes(self):
        grid = ScenarioGrid.loads(self.GRID)
        scenarios = grid.expand()
        assert len(scenarios) == 4
        assert [s.plan.seed for s in scenarios] == [1, 1, 2, 2]
        assert ([s.build_config().snug.identify_cycles for s in scenarios]
                == [15_000, 30_000, 15_000, 30_000])
        assert scenarios[0].name == "g__seed=1__identify_cycles=15000"

    def test_round_trip(self):
        grid = ScenarioGrid.loads(self.GRID)
        assert ScenarioGrid.loads(grid.dumps()) == grid

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ConfigError, match="distinct"):
            ScenarioGrid.loads(self.GRID.replace("[1, 2]", "[1, 1]"))

    def test_bad_grid_point_names_point_and_path(self):
        bad = self.GRID.replace("[15000, 30000]", "[15000, -5]")
        with pytest.raises(ConfigError, match=r"grid point .*system\.snug"):
            ScenarioGrid.loads(bad).expand()

    def test_float_axis_values_make_file_safe_names(self):
        grid = ScenarioGrid.loads(self.GRID.replace(
            "system.overrides.snug.identify_cycles: [15000, 30000]",
            "system.overrides.snug.group_cycles: [1.0e+7, 1.0e+8]",
        ))
        names = [s.name for s in grid.expand()]
        assert names[0] == "g__seed=1__group_cycles=1e07"
        assert len(set(names)) == 4

    def test_resolution_is_memoized(self):
        s = tiny_scenario()
        assert s.build_config() is s.build_config()
        first = s.build_mixes()
        assert first == s.build_mixes()
        first.append("mutant")  # callers get copies, not the memo
        assert s.build_mixes()[-1] != "mutant"

    def test_expand_scenario_file_flattens(self, tmp_path):
        path = tmp_path / "g.yaml"
        path.write_text(self.GRID)
        assert [s.name for s in expand_scenario_file(path)] == [
            "g__seed=1__identify_cycles=15000",
            "g__seed=1__identify_cycles=30000",
            "g__seed=2__identify_cycles=15000",
            "g__seed=2__identify_cycles=30000",
        ]
