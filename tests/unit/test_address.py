"""Unit tests for repro.mem.address."""

import pytest

from repro.common.config import CacheGeometry
from repro.mem.address import CORE_ID_SHIFT, AddressMap, core_address_base


class TestAddressMap:
    def setup_method(self):
        self.amap = AddressMap(num_sets=1024, line_bytes=64)

    def test_index_and_tag_widths(self):
        assert self.amap.index_bits == 10
        assert self.amap.offset_bits == 6

    def test_set_index_wraps(self):
        assert self.amap.set_index(0) == 0
        assert self.amap.set_index(1023) == 1023
        assert self.amap.set_index(1024) == 0
        assert self.amap.set_index(1025) == 1

    def test_tag(self):
        assert self.amap.tag(1024) == 1
        assert self.amap.tag(1023) == 0

    def test_roundtrip(self):
        for addr in (0, 1, 1023, 1024, 123456789):
            t, s = self.amap.tag(addr), self.amap.set_index(addr)
            assert self.amap.block_from(t, s) == addr

    def test_block_from_validates_index(self):
        with pytest.raises(ValueError):
            self.amap.block_from(0, 1024)

    def test_byte_block_conversion(self):
        assert self.amap.block_of_byte(0) == 0
        assert self.amap.block_of_byte(63) == 0
        assert self.amap.block_of_byte(64) == 1
        assert self.amap.byte_of_block(1) == 64
        assert self.amap.offset(67) == 3

    def test_same_set(self):
        assert self.amap.same_set(5, 5 + 1024)
        assert not self.amap.same_set(5, 6)

    def test_flipped_index(self):
        assert self.amap.flipped_index(6) == 7
        assert self.amap.flipped_index(7) == 6
        assert self.amap.flipped_index(0) == 1

    def test_for_geometry(self):
        amap = AddressMap.for_geometry(CacheGeometry())
        assert amap.num_sets == 1024

    def test_bad_geometry_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            AddressMap(num_sets=100)


class TestCoreAddressBase:
    def test_disjoint_spaces(self):
        assert core_address_base(0) == 0
        assert core_address_base(1) == 1 << CORE_ID_SHIFT
        assert core_address_base(2) != core_address_base(3)

    def test_index_bits_unaffected(self):
        amap = AddressMap(num_sets=1024)
        addr = 12345
        assert amap.set_index(addr) == amap.set_index(addr + core_address_base(3))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            core_address_base(-1)
