"""Unit tests for repro.mem.writebuffer."""

from repro.common.config import WriteBufferConfig
from repro.mem.writebuffer import WriteBackBuffer


def make(entries=4, drain=100, direct=True):
    return WriteBackBuffer(WriteBufferConfig(entries=entries, drain_cycles=drain, direct_read=direct))


class TestDeposit:
    def test_deposit_no_stall_when_space(self):
        buf = make()
        assert buf.deposit(1, now=0) == 0
        assert len(buf) == 1

    def test_merge_same_block(self):
        buf = make()
        buf.deposit(1, 0)
        assert buf.deposit(1, 1) == 0
        assert len(buf) == 1
        assert buf.stats.get("merged") == 1

    def test_full_buffer_stalls(self):
        buf = make(entries=2, drain=100)
        buf.deposit(1, 0)
        buf.deposit(2, 0)
        # Third deposit at t=0: head drains at t=100 -> 100-cycle stall.
        stall = buf.deposit(3, 0)
        assert stall == 100
        assert buf.stats.get("full_stalls") == 1

    def test_drain_frees_entries(self):
        buf = make(entries=2, drain=100)
        buf.deposit(1, 0)
        buf.deposit(2, 0)
        # At t=250 both entries have drained (100 and 200).
        assert buf.deposit(3, 250) == 0
        assert buf.stats.get("drained") == 2

    def test_fifo_order(self):
        buf = make(entries=3, drain=100)
        buf.deposit(1, 0)
        buf.deposit(2, 0)
        buf.deposit(3, 0)
        buf._drain_until(150)  # only the head (1) drained
        assert 1 not in buf
        assert 2 in buf and 3 in buf


class TestDirectRead:
    def test_hit_removes_entry(self):
        buf = make()
        buf.deposit(5, 0)
        assert buf.try_read(5, 1)
        assert 5 not in buf
        assert buf.stats.get("direct_reads") == 1

    def test_miss(self):
        buf = make()
        assert not buf.try_read(5, 0)

    def test_disabled(self):
        buf = make(direct=False)
        buf.deposit(5, 0)
        assert not buf.try_read(5, 1)

    def test_read_after_drain_misses(self):
        buf = make(drain=50)
        buf.deposit(5, 0)
        assert not buf.try_read(5, 200)  # already retired to DRAM


class TestReset:
    def test_reset_clears(self):
        buf = make()
        buf.deposit(1, 0)
        buf.reset()
        assert len(buf) == 0
        assert buf.stats.get("deposits") == 0
