"""Unit tests for Cooperative Caching (CC)."""

from tests.helpers import addr, fill_set, tiny_system

from repro.schemes.base import Outcome
from repro.schemes.cc import CooperativeCaching


def make(prob=1.0):
    return CooperativeCaching(tiny_system(), spill_probability=prob)


def total_hosted(scheme):
    return sum(s.cc_occupancy() for s in scheme.slices)


class TestSpilling:
    def test_clean_eviction_spills_at_p1(self):
        s = make(1.0)
        fill_set(s, 0, 0, 5)  # one clean eviction from a 4-way set
        assert total_hosted(s) == 1
        assert s.flat_stats()["l2_0.spills_out"] == 1

    def test_no_spill_at_p0(self):
        s = make(0.0)
        fill_set(s, 0, 0, 6)
        assert total_hosted(s) == 0

    def test_dirty_victim_not_spilled(self):
        s = make(1.0)
        a = addr(0, 0, 0)
        s.access(0, a, True, 0)  # dirty
        fill_set(s, 0, 0, 4, t0=500, start_tag=1)
        assert total_hosted(s) == 0
        assert s.flat_stats().get("wbuf_0.deposits", 0) == 1

    def test_spilled_block_lands_in_same_index_set(self):
        s = make(1.0)
        fill_set(s, 0, 3, 5)
        hosted = [
            (i, line)
            for i, sl in enumerate(s.slices)
            for line in sl.resident()
            if line.cc
        ]
        assert len(hosted) == 1
        peer, line = hosted[0]
        assert peer != 0
        assert s.amap.set_index(line.addr) == 3
        assert line.owner == 0

    def test_hosted_block_not_respilled(self):
        """1-chance forwarding: a cc victim dies quietly."""
        s = make(1.0)
        spilled = addr(0, 0, 0)
        fill_set(s, 0, 0, 5)  # spills tag 0 somewhere
        host = next(i for i, sl in enumerate(s.slices) if sl.cc_occupancy())
        # Fill the host's same set with its own lines until the cc line dies.
        fill_set(s, host, 0, 8, t0=50_000)
        assert s.flat_stats()[f"l2_{host}.cc_evicted"] >= 1
        # The dead cooperative block exists nowhere on chip any more.
        assert all(sl.probe(spilled) is None for sl in s.slices)

    def test_probabilistic_spill_rate(self):
        s = make(0.5)
        for set_index in range(16):
            fill_set(s, 0, set_index, 12, t0=set_index * 40_000)
        spills = s.flat_stats()["l2_0.spills_out"]
        # 16 sets x 8 clean evictions each = 128 opportunities.
        assert 40 <= spills <= 90


class TestRetrieval:
    def test_remote_hit_forwards_and_invalidates(self):
        s = make(1.0)
        victim_addr = addr(0, 0, 0)
        fill_set(s, 0, 0, 5)  # evicts tag 0 -> spilled
        res = s.access(0, victim_addr, False, 10_000)
        assert res.outcome is Outcome.REMOTE_HIT
        assert res.latency >= s.config.latency.l2_remote
        assert s.slices[0].probe(victim_addr) is not None  # back home
        # The forwarded copy was invalidated: exactly one copy on chip.
        copies = sum(sl.probe(victim_addr) is not None for sl in s.slices)
        assert copies == 1

    def test_remote_miss_goes_to_memory(self):
        s = make(0.0)
        fill_set(s, 0, 0, 5)
        res = s.access(0, addr(0, 0, 0), False, 10_000)
        assert res.outcome is Outcome.MEMORY

    def test_write_after_retrieval_dirties_home_copy(self):
        s = make(1.0)
        victim_addr = addr(0, 0, 0)
        fill_set(s, 0, 0, 5)
        s.access(0, victim_addr, True, 10_000)
        assert s.slices[0].probe(victim_addr).dirty


class TestInvariants:
    def test_at_most_one_copy_onchip(self):
        s = make(1.0)
        for set_index in range(4):
            fill_set(s, 0, set_index, 7, t0=set_index * 40_000)
            fill_set(s, 1, set_index, 6, t0=set_index * 40_000 + 500)
        seen = {}
        for i, sl in enumerate(s.slices):
            for line in sl.resident():
                assert line.addr not in seen, f"duplicate {line.addr} in {i} and {seen[line.addr]}"
                seen[line.addr] = i

    def test_bus_traffic_accounted(self):
        s = make(1.0)
        fill_set(s, 0, 0, 5)
        stats = s.flat_stats()
        assert stats["bus.snoops"] >= 1
        assert stats["bus.transfers"] >= 1
