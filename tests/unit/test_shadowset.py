"""Unit tests for repro.cache.shadowset."""

import pytest

from repro.cache.shadowset import ShadowSet


class TestShadowSet:
    def test_record_and_hit(self):
        s = ShadowSet(4)
        s.record_eviction(10)
        assert 10 in s
        assert s.hit_and_invalidate(10)
        assert 10 not in s  # exclusivity: removed as the block re-enters L2

    def test_miss(self):
        s = ShadowSet(4)
        assert not s.hit_and_invalidate(99)

    def test_capacity_lru(self):
        s = ShadowSet(2)
        s.record_eviction(1)
        s.record_eviction(2)
        s.record_eviction(3)  # evicts shadow-LRU (1)
        assert 1 not in s
        assert 2 in s and 3 in s

    def test_re_eviction_refreshes_recency(self):
        s = ShadowSet(2)
        s.record_eviction(1)
        s.record_eviction(2)
        s.record_eviction(1)  # refresh 1: now 2 is shadow-LRU
        s.record_eviction(3)
        assert 2 not in s
        assert 1 in s and 3 in s

    def test_no_duplicates(self):
        s = ShadowSet(4)
        s.record_eviction(7)
        s.record_eviction(7)
        assert len(s) == 1

    def test_invalidate(self):
        s = ShadowSet(2)
        s.record_eviction(5)
        assert s.invalidate(5)
        assert not s.invalidate(5)

    def test_clear(self):
        s = ShadowSet(2)
        s.record_eviction(1)
        s.clear()
        assert len(s) == 0

    def test_tags_mru_first(self):
        s = ShadowSet(3)
        for a in (1, 2, 3):
            s.record_eviction(a)
        assert s.tags() == [3, 2, 1]

    def test_bad_assoc(self):
        with pytest.raises(ValueError):
            ShadowSet(0)
