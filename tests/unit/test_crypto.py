"""Units for the payload-encryption primitives behind protocol v2.

Pins the HKDF-SHA256 derivation against the RFC 5869 test vectors (a
wrong-but-self-consistent KDF would interoperate with itself while leaking
key structure), exercises both AEAD constructions — ``aes-gcm`` when the
optional ``cryptography`` package is present and the stdlib-only
``hmac-ctr`` everywhere — and covers the negotiation rules the socket
handshake builds on.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ProtocolError
from repro.engine.backends.crypto import (
    CIPHER_PREFERENCE,
    HmacCtrCipher,
    hkdf_sha256,
    make_cipher,
    negotiate_cipher,
    supported_ciphers,
)

try:
    from cryptography.hazmat.primitives.ciphers.aead import AESGCM  # noqa: F401

    _HAVE_AESGCM = True
except Exception:  # pragma: no cover - depends on environment
    _HAVE_AESGCM = False


class TestHkdf:
    def test_rfc5869_case_1(self):
        """RFC 5869 A.1: basic SHA-256 test case."""
        okm = hkdf_sha256(
            bytes.fromhex("0b" * 22),
            salt=bytes.fromhex("000102030405060708090a0b0c"),
            info=bytes.fromhex("f0f1f2f3f4f5f6f7f8f9"),
            length=42,
        )
        assert okm == bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_rfc5869_case_3_empty_salt_and_info(self):
        """RFC 5869 A.3: zero-length salt and info."""
        okm = hkdf_sha256(bytes.fromhex("0b" * 22), salt=b"", info=b"", length=42)
        assert okm == bytes.fromhex(
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    def test_distinct_info_yields_independent_keys(self):
        base = dict(salt=b"\x01" * 32, length=32)
        a = hkdf_sha256(b"secret", info=b"repro-engine-v2 payload aes-gcm", **base)
        b = hkdf_sha256(b"secret", info=b"repro-engine-v2 payload hmac-ctr", **base)
        assert a != b

    def test_length_bounds(self):
        with pytest.raises(ValueError):
            hkdf_sha256(b"k", salt=b"", info=b"", length=0)
        with pytest.raises(ValueError):
            hkdf_sha256(b"k", salt=b"", info=b"", length=255 * 32 + 1)


class _CipherContract:
    """Shared seal/open contract every payload cipher must satisfy."""

    def cipher(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def test_round_trip(self):
        c = self.cipher()
        for body in (b"", b"x", b"\x80\x05 pickled payload " * 100):
            assert c.open(c.seal(body)) == body

    def test_nonces_never_repeat_across_seals(self):
        c = self.cipher()
        blobs = {c.seal(b"same plaintext") for _ in range(64)}
        assert len(blobs) == 64

    def test_tamper_rejected(self):
        c = self.cipher()
        blob = bytearray(c.seal(b"payload"))
        for index in (0, len(blob) // 2, len(blob) - 1):
            flipped = bytearray(blob)
            flipped[index] ^= 0x01
            with pytest.raises(ProtocolError, match="authentication"):
                c.open(bytes(flipped))

    def test_truncated_blob_rejected(self):
        c = self.cipher()
        blob = c.seal(b"payload")
        for cut in (0, 1, len(blob) - 1):
            with pytest.raises(ProtocolError):
                c.open(blob[:cut])

    def test_wrong_key_rejected(self):
        sealed = self.cipher().seal(b"payload")
        other = self.cipher(secret=b"another secret entirely")
        with pytest.raises(ProtocolError, match="authentication"):
            other.open(sealed)


class TestHmacCtrCipher(_CipherContract):
    def cipher(self, secret: bytes = b"shared secret"):
        return make_cipher("hmac-ctr", secret, salt=b"\x02" * 32)

    def test_is_not_ecb_like(self):
        """Identical plaintext blocks must not produce identical ciphertext
        blocks — the CTR keystream must differ per block."""
        c = self.cipher()
        blob = c.seal(b"A" * 64)
        body = blob[HmacCtrCipher._NONCE : -HmacCtrCipher._TAG]
        assert body[:32] != body[32:64]


@pytest.mark.skipif(not _HAVE_AESGCM, reason="cryptography package not installed")
class TestAesGcmCipher(_CipherContract):
    def cipher(self, secret: bytes = b"shared secret"):
        return make_cipher("aes-gcm", secret, salt=b"\x02" * 32)


class TestNegotiation:
    def test_supported_always_includes_stdlib_fallback(self):
        names = supported_ciphers()
        assert "hmac-ctr" in names
        assert list(names) == [n for n in CIPHER_PREFERENCE if n in names]

    def test_preference_order_wins(self):
        # Offer in reverse preference order; negotiation must still pick
        # the coordinator's preferred cipher, not the worker's ordering.
        offered = list(reversed(supported_ciphers()))
        assert negotiate_cipher(offered) == supported_ciphers()[0]

    def test_no_overlap_is_none(self):
        assert negotiate_cipher(["rot13", "xor-of-doom"]) is None
        assert negotiate_cipher([]) is None

    def test_unknown_cipher_name_rejected(self):
        with pytest.raises(ProtocolError, match="unknown payload cipher"):
            make_cipher("rot13", b"secret", salt=b"\x00" * 32)
