"""Unit tests for repro.cache.lruset."""

import pytest

from repro.cache.block import CacheLine
from repro.cache.lruset import LruSet


def fill(lruset, addrs):
    for a in addrs:
        lruset.insert(CacheLine(addr=a))


class TestBasics:
    def test_empty(self):
        s = LruSet(4)
        assert len(s) == 0
        assert not s.full
        assert s.probe(1) is None
        assert s.evict_lru() is None

    def test_bad_assoc(self):
        with pytest.raises(ValueError):
            LruSet(0)

    def test_insert_until_full(self):
        s = LruSet(2)
        assert s.insert(CacheLine(addr=1)) is None
        assert s.insert(CacheLine(addr=2)) is None
        assert s.full
        victim = s.insert(CacheLine(addr=3))
        assert victim is not None and victim.addr == 1  # LRU evicted


class TestLruOrder:
    def test_touch_moves_to_mru(self):
        s = LruSet(3)
        fill(s, [1, 2, 3])  # MRU order: 3,2,1
        assert s.addrs() == [3, 2, 1]
        s.touch(1)
        assert s.addrs() == [1, 3, 2]

    def test_miss_returns_none(self):
        s = LruSet(2)
        assert s.touch(42) is None

    def test_victim_is_least_recent(self):
        s = LruSet(3)
        fill(s, [1, 2, 3])
        s.touch(1)  # 2 is now LRU
        victim = s.insert(CacheLine(addr=4))
        assert victim.addr == 2


class TestHitPositions:
    def test_positions_one_based(self):
        s = LruSet(4)
        fill(s, [1, 2, 3])  # MRU 3,2,1
        assert s.hit_position(3) == 1
        assert s.hit_position(2) == 2
        assert s.hit_position(1) == 3
        assert s.hit_position(99) == 0

    def test_access_reports_position_then_promotes(self):
        s = LruSet(4)
        fill(s, [1, 2, 3])
        pos, line = s.access(1)
        assert pos == 3 and line.addr == 1
        assert s.addrs()[0] == 1
        pos, _ = s.access(1)
        assert pos == 1  # now MRU

    def test_access_miss(self):
        s = LruSet(2)
        pos, line = s.access(5)
        assert pos == 0 and line is None


class TestInvalidate:
    def test_invalidate_removes(self):
        s = LruSet(3)
        fill(s, [1, 2])
        line = s.invalidate(1)
        assert line.addr == 1
        assert s.probe(1) is None
        assert len(s) == 1

    def test_invalidate_absent(self):
        s = LruSet(2)
        assert s.invalidate(9) is None


class TestInsertAtLru:
    def test_lowest_priority(self):
        s = LruSet(3)
        fill(s, [1, 2])
        s.insert_at_lru(CacheLine(addr=3))
        assert s.addrs() == [2, 1, 3]
        victim = s.insert(CacheLine(addr=4))
        assert victim.addr == 3


class TestFindVictim:
    def test_predicate_scans_from_lru(self):
        s = LruSet(3)
        s.insert(CacheLine(addr=1, cc=True))
        s.insert(CacheLine(addr=2))
        s.insert(CacheLine(addr=3, cc=True))
        found = s.find_victim(lambda l: l.cc)
        assert found.addr == 1  # LRU-most cc line

    def test_no_match(self):
        s = LruSet(2)
        fill(s, [1])
        assert s.find_victim(lambda l: l.dirty) is None

    def test_remove_specific(self):
        s = LruSet(2)
        line = CacheLine(addr=9)
        s.insert(line)
        s.remove(line)
        assert len(s) == 0
