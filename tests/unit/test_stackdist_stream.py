"""Unit tests for repro.cache.stackdist_stream (chunked Mattson profiling)."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cache.stackdist import StackDistanceProfiler
from repro.cache.stackdist_fast import profile_stream
from repro.cache.stackdist_stream import (
    StreamingProfiler,
    concat_profiles,
    profile_chunks,
)
from repro.workloads.spec2000 import make_benchmark_trace


def chunked(addrs, size):
    return [addrs[i : i + size] for i in range(0, len(addrs), size)]


class TestValidation:
    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ValueError):
            StreamingProfiler(3, 4)

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            StreamingProfiler(4, 0)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            StreamingProfiler(4, 4, interval_accesses=0)

    def test_max_intervals_requires_fixed_intervals(self):
        with pytest.raises(ValueError):
            StreamingProfiler(4, 4, max_intervals=3)

    def test_cut_rejected_in_fixed_mode(self):
        with pytest.raises(ValueError):
            StreamingProfiler(4, 4, interval_accesses=10).cut()


class TestFixedIntervals:
    def test_matches_batch_on_benchmark_trace(self):
        trace = make_benchmark_trace("ammp", 16, 4_000, seed=3)
        want = profile_stream(trace.addrs, 16, 8, 500)
        got = profile_chunks(chunked(trace.addrs, 333), 16, 8, 500)
        assert (got.hist == want.hist).all()

    def test_chunk_size_is_invisible(self):
        trace = make_benchmark_trace("vortex", 8, 2_000, seed=1)
        profiles = [
            profile_chunks(chunked(trace.addrs, size), 8, 6, 250).hist
            for size in (1, 7, 250, 2_000)
        ]
        for hist in profiles[1:]:
            assert (hist == profiles[0]).all()

    def test_partial_trailing_interval_never_emitted(self):
        prof = StreamingProfiler(2, 4, interval_accesses=10)
        out = prof.feed(np.zeros(25, dtype=np.int64))
        assert out.intervals == 2
        assert prof.emitted_intervals == 2
        assert prof.consumed == 25

    def test_interval_spanning_chunks(self):
        addrs = np.array([0, 0, 0, 0, 0, 0], dtype=np.int64)
        prof = StreamingProfiler(1, 2, interval_accesses=4)
        first = prof.feed(addrs[:3])
        assert first.intervals == 0  # interval still open
        second = prof.feed(addrs[3:])
        assert second.intervals == 1
        want = profile_stream(addrs, 1, 2, 4)
        assert (second.hist == want.hist).all()

    def test_max_intervals_stops_emission(self):
        trace = make_benchmark_trace("gcc", 8, 3_000, seed=2)
        want = profile_stream(trace.addrs, 8, 8, 200, max_intervals=5)
        got = profile_chunks(chunked(trace.addrs, 170), 8, 8, 200, max_intervals=5)
        assert got.intervals == 5
        assert (got.hist == want.hist).all()

    def test_done_profiler_ignores_feeds(self):
        prof = StreamingProfiler(1, 2, interval_accesses=2, max_intervals=1)
        prof.feed(np.array([5, 5], dtype=np.int64))
        assert prof.done
        assert prof.feed(np.array([5, 5], dtype=np.int64)).intervals == 0

    def test_empty_chunk_is_noop(self):
        prof = StreamingProfiler(2, 4, interval_accesses=4)
        out = prof.feed(np.zeros(0, dtype=np.int64))
        assert out.intervals == 0
        assert prof.consumed == 0


class TestCarryAcrossChunks:
    def test_rereference_across_chunk_boundary_hits(self):
        # Same block in both chunks: the second reference must score as a
        # distance-1 hit even though its window spans the boundary.
        prof = StreamingProfiler(1, 4, interval_accesses=2)
        prof.feed(np.array([9], dtype=np.int64))
        out = prof.feed(np.array([9], dtype=np.int64))
        assert out.hist[0, 0].tolist() == [1, 0, 0, 0]

    def test_depth_truncation_across_boundary(self):
        # d distinct blocks push the first one exactly depth deep; a deeper
        # history (depth+1 blocks) must not resurrect it.
        depth = 3
        prof = StreamingProfiler(1, depth, interval_accesses=8)
        prof.feed(np.array([1, 2, 3, 4], dtype=np.int64))  # 1 now depth+1 deep
        out = prof.feed(np.array([1, 5, 6, 7], dtype=np.int64))
        want = profile_stream(np.array([1, 2, 3, 4, 1, 5, 6, 7]), 1, depth, 8)
        assert (out.hist == want.hist).all()
        assert out.hist.sum() == 0  # the re-reference was beyond depth


class TestCallerCutMode:
    def test_cut_matches_reference_end_interval(self):
        trace = make_benchmark_trace("parser", 8, 1_200, seed=4)
        spec = StackDistanceProfiler(8, 8)
        stream = StreamingProfiler(8, 8)
        for chunk in chunked(trace.addrs, 97):
            spec.reference_many(chunk)
            stream.feed(chunk)
            assert (stream.cut_block_required() == spec.end_interval()).all()

    def test_cut_resets_the_open_interval(self):
        prof = StreamingProfiler(1, 2)
        prof.feed(np.array([3, 3], dtype=np.int64))
        assert prof.cut()[0, 0] == 1
        assert prof.cut().sum() == 0


class TestGoldenProfile:
    """Snapshot pin: all three kernels must reproduce a committed profile.

    The property suite ties the kernels to each other; this golden file
    (captured from the vectorized kernel at PR 4) additionally pins them
    against drifting *together*.
    """

    GOLDEN = (
        Path(__file__).resolve().parents[1] / "data" / "golden_demand_profile_tiny.json"
    )

    def load(self):
        doc = json.loads(self.GOLDEN.read_text())
        trace = make_benchmark_trace(
            doc["benchmark"], doc["num_sets"], doc["n_accesses"], doc["seed"]
        )
        return doc, trace, np.array(doc["hist"], dtype=np.int64)

    def test_batch_kernel_matches_golden(self):
        doc, trace, want = self.load()
        got = profile_stream(
            trace.addrs, doc["num_sets"], doc["depth"], doc["interval_accesses"]
        )
        assert (got.hist == want).all()

    def test_streaming_kernel_matches_golden(self):
        doc, trace, want = self.load()
        for size in (173, 250, 1_000):
            got = profile_chunks(
                chunked(trace.addrs, size),
                doc["num_sets"],
                doc["depth"],
                doc["interval_accesses"],
            )
            assert (got.hist == want).all()

    def test_reference_profiler_matches_golden(self):
        doc, trace, want = self.load()
        spec = StackDistanceProfiler(doc["num_sets"], doc["depth"])
        ia = doc["interval_accesses"]
        for i in range(want.shape[0]):
            spec.reference_many(trace.addrs[i * ia : (i + 1) * ia])
            assert (np.stack([s.hist for s in spec.sets]) == want[i]).all()
            spec.end_interval()


class TestConcatProfiles:
    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            concat_profiles([])

    def test_shape_mismatch_rejected(self):
        a = profile_stream(np.zeros(4, dtype=np.int64), 1, 2, 2)
        b = profile_stream(np.zeros(4, dtype=np.int64), 2, 2, 2)
        with pytest.raises(ValueError):
            concat_profiles([a, b])

    def test_concat_orders_slices(self):
        addrs = make_benchmark_trace("gzip", 4, 800, seed=0).addrs
        want = profile_stream(addrs, 4, 4, 100)
        halves = [
            profile_stream(addrs[:400], 4, 4, 100),
            # second half primed is NOT the same as streaming — this only
            # checks concat stitches rows in order.
        ]
        got = concat_profiles(halves)
        assert (got.hist == want.hist[:4]).all()
