"""Unit tests for Dynamic Spill-Receive (DSR)."""

from tests.helpers import addr, fill_set, tiny_system

from repro.schemes.base import Outcome
from repro.schemes.dsr import DynamicSpillReceive, _FOLLOWER, _RECV_LEADER, _SPILL_LEADER


def make():
    return DynamicSpillReceive(tiny_system())


class TestLeaderLayout:
    def test_leader_counts(self):
        s = make()
        assert s.set_role.count(_SPILL_LEADER) == 2
        assert s.set_role.count(_RECV_LEADER) == 2
        assert s.set_role.count(_FOLLOWER) == 12

    def test_leaders_spread(self):
        s = make()
        assert s.set_role[0] == _SPILL_LEADER
        assert s.set_role[1] == _RECV_LEADER
        assert s.set_role[8] == _SPILL_LEADER
        assert s.set_role[9] == _RECV_LEADER


class TestDueling:
    def test_initial_policy_is_receiver(self):
        s = make()
        assert not s.cache_is_spiller(0)

    def test_dram_miss_in_recv_leader_pushes_toward_spiller(self):
        s = make()
        before = s.psel[0].value
        s.access(0, addr(0, 1, 0), False, 0)  # set 1 = recv leader, cold miss
        assert s.psel[0].value == before + 1

    def test_dram_miss_in_spill_leader_pushes_toward_receiver(self):
        s = make()
        before = s.psel[0].value
        s.access(0, addr(0, 0, 0), False, 0)  # set 0 = spill leader
        assert s.psel[0].value == before - 1

    def test_follower_miss_does_not_move_psel(self):
        s = make()
        before = s.psel[0].value
        s.access(0, addr(0, 5, 0), False, 0)
        assert s.psel[0].value == before

    def test_remote_hit_does_not_move_psel(self):
        """Only true off-chip misses feed the duel."""
        s = make()
        # Spill-leader set 0 of core 0: victim spilled, then retrieved.
        fill_set(s, 0, 0, 5)
        before = s.psel[0].value
        res = s.access(0, addr(0, 0, 0), False, 50_000)
        assert res.outcome is Outcome.REMOTE_HIT
        assert s.psel[0].value == before

    def test_psel_flip_changes_policy(self):
        s = make()
        for k in range(600):  # hammer recv-leader misses
            s.access(0, addr(0, 1, 100 + k), False, k * 400)
        assert s.cache_is_spiller(0)


class TestSpillGating:
    def test_spill_leader_always_spills(self):
        s = make()
        fill_set(s, 0, 0, 5)  # spill-leader set
        assert s.flat_stats()["l2_0.spills_out"] == 1

    def test_recv_leader_never_spills(self):
        s = make()
        fill_set(s, 0, 1, 8)  # recv-leader set
        assert s.flat_stats().get("l2_0.spills_out", 0) == 0

    def test_follower_follows_receiver_policy(self):
        s = make()  # all caches start as receivers
        fill_set(s, 0, 5, 8)  # follower set: receiver policy -> no spill
        assert s.flat_stats().get("l2_0.spills_out", 0) == 0

    def test_spill_goes_to_receiver_peer_same_index(self):
        s = make()
        fill_set(s, 0, 0, 5)
        hosted = [
            (i, line)
            for i, sl in enumerate(s.slices)
            for line in sl.resident()
            if line.cc
        ]
        assert len(hosted) == 1
        peer, line = hosted[0]
        assert peer != 0
        assert s.amap.set_index(line.addr) == 0

    def test_no_receivers_drops_spill(self):
        s = make()
        for core in range(4):  # flip every cache to spiller
            for k in range(600):
                s.access(core, addr(core, 1, 100 + k), False, k * 400)
        assert all(s.cache_is_spiller(c) for c in range(4))
        before = s.flat_stats().get("l2_0.spills_dropped", 0)
        fill_set(s, 0, 0, 6, t0=10_000_000, start_tag=900)
        assert s.flat_stats()["l2_0.spills_dropped"] > before


class TestRetrieval:
    def test_forward_and_invalidate(self):
        s = make()
        victim = addr(0, 0, 0)
        fill_set(s, 0, 0, 5)
        res = s.access(0, victim, False, 60_000)
        assert res.outcome is Outcome.REMOTE_HIT
        assert s.slices[0].probe(victim) is not None
        copies = sum(sl.probe(victim) is not None for sl in s.slices)
        assert copies == 1  # host invalidated its forwarded copy
