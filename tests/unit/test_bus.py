"""Unit tests for repro.interconnect.bus."""

from repro.common.config import BusConfig
from repro.interconnect.bus import SnoopBus


class TestAccountingMode:
    def test_no_delay_by_default(self):
        bus = SnoopBus(BusConfig())
        assert bus.snoop(0) == 0
        assert bus.transfer(0, 64) == 0

    def test_traffic_counted(self):
        bus = SnoopBus(BusConfig())
        bus.snoop(0)
        bus.transfer(0, 64)
        assert bus.stats.get("snoops") == 1
        assert bus.stats.get("transfers") == 1
        assert bus.stats.get("bytes") == 72  # 8 addr + 64 data
        assert bus.stats.get("busy_cycles") > 0


class TestContentionMode:
    def cfg(self):
        return BusConfig(model_contention=True)

    def test_first_transfer_free(self):
        bus = SnoopBus(self.cfg())
        assert bus.transfer(0, 64) == 0

    def test_back_to_back_queues(self):
        bus = SnoopBus(self.cfg())
        bus.transfer(0, 64)  # occupies 20 core cycles
        delay = bus.transfer(0, 64)
        assert delay == 20
        assert bus.stats.get("queue_cycles") == 20

    def test_spaced_transfers_free(self):
        bus = SnoopBus(self.cfg())
        bus.transfer(0, 64)
        assert bus.transfer(100, 64) == 0

    def test_reset(self):
        bus = SnoopBus(self.cfg())
        bus.transfer(0, 64)
        bus.reset()
        assert bus.transfer(0, 64) == 0
        assert bus.stats.get("transfers") == 1
