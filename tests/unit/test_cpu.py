"""Unit tests for repro.core.cpu (TraceCore)."""

import numpy as np
import pytest

from repro.core.cpu import TraceCore
from repro.workloads.trace import Trace


def mk_trace(gaps, addrs=None):
    n = len(gaps)
    return Trace(
        np.array(gaps),
        np.array(addrs if addrs is not None else range(n)),
        np.zeros(n, dtype=bool),
    )


class TestStepping:
    def test_issue_time_includes_gap(self):
        core = TraceCore(0, mk_trace([10, 5]), base_cpi=1.0, l1_latency=1)
        assert core.peek_issue_time() == 10
        issue, addr, write = core.next_access()
        assert issue == 10 and addr == 0 and write is False
        core.complete(issue, l2_latency=100)
        assert core.time == 10 + 1 + 100

    def test_cpi_scales_gap(self):
        core = TraceCore(0, mk_trace([10]), base_cpi=2.0, l1_latency=1)
        assert core.peek_issue_time() == 20

    def test_trace_wraps(self):
        core = TraceCore(0, mk_trace([1, 1]))
        for _ in range(5):
            issue, _, _ = core.next_access()
            core.complete(issue, 0)
        assert core.wraps == 2
        assert core.accesses == 5

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceCore(0, mk_trace([]))  # TraceError first, actually


class TestMeasurement:
    def test_finish_crossing(self):
        core = TraceCore(0, mk_trace([10, 10, 10]))
        core.target_instructions = 25
        while not core.done:
            issue, _, _ = core.next_access()
            core.complete(issue, 4)
        assert core.instructions >= 25
        assert core.finish_time == core.time

    def test_ipc_over_window(self):
        core = TraceCore(0, mk_trace([10]))
        core.target_instructions = 30
        while not core.done:
            issue, _, _ = core.next_access()
            core.complete(issue, 4)  # each access: 10 instr, 15 cycles
        assert core.ipc() == pytest.approx(30 / 45)

    def test_warmup_excluded_from_ipc(self):
        core = TraceCore(0, mk_trace([10]))
        core.target_instructions = 30
        core.warmup_instructions = 20
        while not core.done:
            issue, _, _ = core.next_access()
            core.complete(issue, 4)
        # Warmup ends after 2 accesses (20 instr) at t=30; finish after 5
        # accesses (50 instr) at t=75; window = 45 cycles for 30 instructions.
        assert core.warmup_end_time == 30
        assert core.finish_time == 75
        assert core.ipc() == pytest.approx(30 / 45)

    def test_running_ipc_before_done(self):
        core = TraceCore(0, mk_trace([10]))
        issue, _, _ = core.next_access()
        core.complete(issue, 9)
        assert core.ipc() == pytest.approx(10 / 20)
