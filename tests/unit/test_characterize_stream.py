"""Streaming characterization: bounded-memory path, bit-identical results."""

import numpy as np
import pytest

from repro.analysis.demand import (
    characterize_stream,
    characterize_trace,
    iter_addr_chunks,
)
from repro.common.errors import ConfigError
from repro.experiments.characterization import figure_distribution
from repro.workloads.spec2000 import make_benchmark_trace
from repro.workloads.trace_cache import TraceCache, benchmark_key


def test_characterize_stream_matches_batch():
    trace = make_benchmark_trace("ammp", 16, 6_000, seed=2)
    want = characterize_trace(trace, 16, interval_accesses=500)
    got = characterize_stream(
        iter_addr_chunks(trace, 777),
        16,
        name=trace.name,
        interval_accesses=500,
    )
    assert got.name == trace.name
    assert (got.demand == want.demand).all()
    assert (got.sizes == want.sizes).all()


def test_characterize_stream_max_intervals():
    trace = make_benchmark_trace("vortex", 8, 4_000, seed=1)
    want = characterize_trace(trace, 8, interval_accesses=300, max_intervals=5)
    got = characterize_stream(
        iter_addr_chunks(trace, 191), 8, interval_accesses=300, max_intervals=5
    )
    assert got.intervals == 5
    assert (got.demand == want.demand).all()


def test_characterize_stream_too_short_rejected():
    with pytest.raises(ConfigError):
        characterize_stream([np.zeros(5, dtype=np.int64)], 4, interval_accesses=100)


def test_iter_addr_chunks_validates_chunk():
    trace = make_benchmark_trace("gzip", 4, 200, seed=0)
    with pytest.raises(ConfigError):
        list(iter_addr_chunks(trace, 0))


class TestStreamAddrs:
    def seed_entry(self, tmp_path, name="gcc", num_sets=8, n=2_000, seed=3):
        cache = TraceCache(tmp_path)
        trace = make_benchmark_trace(name, num_sets, n, seed)
        key = benchmark_key(name, num_sets, n, seed)
        cache.store(key, [trace])
        return cache, key, trace

    def test_chunks_reassemble_to_addrs(self, tmp_path):
        cache, key, trace = self.seed_entry(tmp_path)
        chunks = list(cache.stream_addrs(key, 300))
        assert all(len(c) <= 300 for c in chunks)
        assert (np.concatenate(chunks) == trace.addrs).all()
        assert cache.hits == 1

    def test_missing_entry_raises_keyerror(self, tmp_path):
        cache = TraceCache(tmp_path)
        key = benchmark_key("gcc", 8, 100, 0)
        with pytest.raises(KeyError):
            list(cache.stream_addrs(key, 10))
        assert cache.misses == 1

    def test_corrupt_entry_rejected(self, tmp_path):
        cache, key, _trace = self.seed_entry(tmp_path)
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(ValueError):
            list(cache.stream_addrs(key, 100))
        assert cache.rejected == 1
        assert cache.hits == 0  # a mid-stream failure is not a hit

    def test_foreign_dtype_rejected_not_converted(self, tmp_path):
        # A hand-built/foreign entry with a non-int64 addrs member must be
        # rejected (regenerating fallback), never silently value-converted.
        import io
        import zipfile

        cache, key, trace = self.seed_entry(tmp_path)
        path = cache.path_for(key)
        with zipfile.ZipFile(path) as archive:
            members = {n: archive.read(n) for n in archive.namelist()}
        buf = io.BytesIO()
        np.save(buf, trace.addrs.astype(np.float64))
        members["addrs_0.npy"] = buf.getvalue()
        with zipfile.ZipFile(path, "w") as archive:
            for name, data in members.items():
                archive.writestr(name, data)
        with pytest.raises(ValueError):
            list(cache.stream_addrs(key, 100))
        assert cache.rejected == 1

    def test_wrong_trace_index_rejected(self, tmp_path):
        cache, key, _trace = self.seed_entry(tmp_path)
        with pytest.raises(ValueError):
            list(cache.stream_addrs(key, 100, trace_index=1))

    def test_bad_chunk_rejected(self, tmp_path):
        cache, key, _trace = self.seed_entry(tmp_path)
        with pytest.raises(ValueError):
            next(iter(cache.stream_addrs(key, 0)))


class TestFigureDistributionStreaming:
    def test_stream_matches_batch_without_cache(self):
        kwargs = dict(num_sets=16, intervals=6, interval_accesses=400, seed=5)
        want = figure_distribution("ammp", **kwargs)
        got = figure_distribution("ammp", stream=True, chunk_accesses=333, **kwargs)
        assert (got.demand == want.demand).all()
        assert (got.sizes == want.sizes).all()

    def test_stream_reads_cache_entry_from_disk(self, tmp_path):
        kwargs = dict(num_sets=16, intervals=6, interval_accesses=400, seed=5)
        want = figure_distribution("vortex", **kwargs)
        got = figure_distribution(
            "vortex", stream=True, chunk_accesses=500,
            trace_cache=str(tmp_path), **kwargs,
        )
        assert (got.demand == want.demand).all()
        # The entry was seeded on first use and is now streamed from disk.
        cache = TraceCache(tmp_path)
        key = benchmark_key("vortex", 16, 6 * 400, 5)
        assert cache.path_for(key).is_file()
        again = figure_distribution(
            "vortex", stream=True, chunk_accesses=500,
            trace_cache=str(tmp_path), **kwargs,
        )
        assert (again.demand == want.demand).all()

    def test_stream_survives_corrupt_cache_entry(self, tmp_path):
        kwargs = dict(num_sets=8, intervals=4, interval_accesses=300, seed=7)
        want = figure_distribution("gcc", **kwargs)
        got = figure_distribution(
            "gcc", stream=True, trace_cache=str(tmp_path), **kwargs
        )
        cache = TraceCache(tmp_path)
        key = benchmark_key("gcc", 8, 4 * 300, 7)
        path = cache.path_for(key)
        path.write_bytes(b"not an archive")
        healed = figure_distribution(
            "gcc", stream=True, trace_cache=str(tmp_path), **kwargs
        )
        assert (got.demand == want.demand).all()
        assert (healed.demand == want.demand).all()
