"""Documentation hygiene, enforced.

Three invariants the docs layer depends on:

* every public module under ``src/repro/`` carries a module docstring (the
  architecture guide links into them);
* every CLI subcommand and every CLI flag is registered with help text;
* every repo-relative file path referenced from ``README.md`` and
  ``docs/*.md`` exists — docs that point at deleted files are worse than no
  docs.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"

PUBLIC_MODULES = sorted(
    p
    for p in SRC.rglob("*.py")
    if not any(part.startswith("_") and part != "__init__.py" for part in p.parts)
)


class TestModuleDocstrings:
    def test_found_the_tree(self):
        assert len(PUBLIC_MODULES) > 40  # the package, not an empty glob

    @pytest.mark.parametrize(
        "path", PUBLIC_MODULES, ids=[str(p.relative_to(SRC)) for p in PUBLIC_MODULES]
    )
    def test_module_has_docstring(self, path):
        tree = ast.parse(path.read_text())
        doc = ast.get_docstring(tree)
        assert doc and doc.strip(), f"{path.relative_to(REPO)} lacks a module docstring"


class TestCliHelp:
    def subparsers(self):
        parser = build_parser()
        actions = [
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        ]
        assert len(actions) == 1
        return parser, actions[0]

    def test_every_subcommand_has_help(self):
        _, sub = self.subparsers()
        registered = {c.dest for c in sub._choices_actions}
        assert registered == set(sub.choices), "subcommand registered without help="
        for choice in sub._choices_actions:
            assert choice.help and choice.help.strip(), f"{choice.dest} has empty help"

    def test_every_flag_has_help(self):
        _, sub = self.subparsers()
        for name, subparser in sub.choices.items():
            for action in subparser._actions:
                if action.option_strings == ["-h", "--help"]:
                    continue
                # Positionals and flags alike must explain themselves unless
                # their name plus choices already do (argparse prints those).
                if action.help is None and not action.choices:
                    pytest.fail(
                        f"'{name}' option {action.option_strings or action.dest} "
                        "has no help text"
                    )

    def test_documented_commands_match_registered(self):
        import repro.cli as cli

        _, sub = self.subparsers()
        for name in sub.choices:
            assert f"``{name}``" in cli.__doc__, (
                f"subcommand {name!r} missing from the repro.cli module docstring"
            )


def referenced_paths(markdown: str):
    """Repo-relative paths a markdown file points at (links + code spans)."""
    refs = set()
    for target in re.findall(r"\]\(([^)#]+)\)", markdown):
        if "://" not in target:
            refs.add(target.strip())
    for span in re.findall(r"`([^`\n]+)`", markdown):
        span = span.strip()
        if re.fullmatch(r"(src|docs|tests|benchmarks|examples)/[\w./\-]+\.\w+", span):
            refs.add(span)
    return sorted(refs)


DOC_FILES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])


class TestDocReferences:
    def test_doc_layer_exists(self):
        names = {p.name for p in DOC_FILES}
        assert {"README.md", "architecture.md", "paper_map.md", "engine.md",
                "benchmarks.md"} <= names

    @pytest.mark.parametrize("doc", DOC_FILES, ids=[p.name for p in DOC_FILES])
    def test_referenced_files_exist(self, doc):
        base = doc.parent
        missing = []
        for ref in referenced_paths(doc.read_text()):
            # Links resolve relative to the doc; bare code spans to the repo.
            if not ((base / ref).exists() or (REPO / ref).exists()):
                missing.append(ref)
        assert not missing, f"{doc.name} references missing files: {missing}"

    def test_readme_quickstart_names_real_commands(self):
        readme = (REPO / "README.md").read_text()
        parser = build_parser()
        sub = [a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"][0]
        for command in ("run", "sweep", "survey", "worker"):
            assert command in sub.choices
            assert command in readme
