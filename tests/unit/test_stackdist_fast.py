"""Unit tests for repro.cache.stackdist_fast (vectorized Mattson profiling)."""

import numpy as np
import pytest

from repro.analysis.demand import characterize_trace
from repro.cache.stackdist_fast import (
    DemandProfile,
    count_leq_before,
    profile_stream,
    stack_distances,
)
from repro.common.errors import ConfigError
from repro.workloads.spec2000 import make_benchmark_trace


class TestCountLeqBefore:
    def test_empty_and_singleton(self):
        assert count_leq_before(np.array([], dtype=np.int64)).size == 0
        assert count_leq_before(np.array([7])).tolist() == [0]

    def test_sorted_ascending_counts_everything(self):
        n = 300  # spans several merge levels
        assert count_leq_before(np.arange(n)).tolist() == list(range(n))

    def test_sorted_descending_counts_nothing(self):
        n = 300
        assert count_leq_before(np.arange(n)[::-1].copy()).tolist() == [0] * n

    def test_ties_count_as_leq(self):
        assert count_leq_before(np.array([5, 5, 5])).tolist() == [0, 1, 2]


class TestStackDistances:
    def test_cold_misses_are_zero(self):
        assert stack_distances(np.arange(10), 2).tolist() == [0] * 10

    def test_immediate_rereference_is_one(self):
        assert stack_distances(np.array([3, 3, 3]), 1).tolist() == [0, 1, 1]

    def test_cyclic_working_set(self):
        """Cycling over w blocks of one set re-references at distance w."""
        w = 5
        addrs = np.tile(np.arange(w) * 4, 6)  # all map to set 0 of 4 sets
        dist = stack_distances(addrs, 4)
        assert (dist[:w] == 0).all()
        assert (dist[w:] == w).all()

    def test_sets_profile_independently(self):
        # Set 0 alternates two blocks; set 1 streams.
        addrs = np.array([0, 2, 0, 2, 1, 3, 5, 7])
        dist = stack_distances(addrs, 2)
        assert dist.tolist() == [0, 0, 2, 2, 0, 0, 0, 0]

    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ValueError):
            stack_distances(np.arange(4), 3)

    def test_long_window_fallback(self):
        """Windows past the short-path bound still produce exact distances."""
        w = 600  # window length >> _SHORT_WINDOW
        addrs = np.tile(np.arange(w), 3)
        dist = stack_distances(addrs, 1)
        assert (dist[w:] == w).all()


class TestDemandProfile:
    def test_block_required_no_hits_is_one(self):
        prof = DemandProfile(hist=np.zeros((2, 3, 4), dtype=np.int64))
        assert (prof.block_required() == 1).all()

    def test_block_required_deepest_hit(self):
        hist = np.zeros((1, 1, 8), dtype=np.int64)
        hist[0, 0, 2] = 5
        hist[0, 0, 5] = 1
        prof = DemandProfile(hist=hist)
        assert prof.block_required()[0, 0] == 6

    def test_hit_counts_clip_to_depth(self):
        hist = np.ones((1, 2, 4), dtype=np.int64)
        prof = DemandProfile(hist=hist)
        assert (prof.hit_counts(2) == 2).all()
        assert (prof.hit_counts(99) == 4).all()

    def test_shape_properties(self):
        prof = DemandProfile(hist=np.zeros((5, 8, 32), dtype=np.int64))
        assert (prof.intervals, prof.num_sets, prof.depth) == (5, 8, 32)


class TestProfileStream:
    def test_validation(self):
        with pytest.raises(ValueError):
            profile_stream(np.arange(8), 4, 0, 4)
        with pytest.raises(ValueError):
            profile_stream(np.arange(8), 4, 8, 0)

    def test_trailing_partial_interval_dropped(self):
        prof = profile_stream(np.zeros(10, dtype=np.int64), 1, 4, 4)
        assert prof.intervals == 2
        # 3 hits in the first full interval (after the cold miss), 4 in the
        # second; the 2 trailing accesses are not profiled — like the spec.
        assert prof.hist[0, 0, 0] == 3
        assert prof.hist[1, 0, 0] == 4

    def test_max_intervals_cap(self):
        prof = profile_stream(np.zeros(20, dtype=np.int64), 1, 4, 4, max_intervals=2)
        assert prof.intervals == 2


class TestCharacterizeKernels:
    def test_fast_and_reference_bit_identical(self):
        trace = make_benchmark_trace("vortex", 16, 6000, seed=3)
        fast = characterize_trace(trace, 16, interval_accesses=1000)
        ref = characterize_trace(trace, 16, interval_accesses=1000, kernel="reference")
        assert (fast.demand == ref.demand).all()
        assert fast.sizes.tobytes() == ref.sizes.tobytes()

    def test_unknown_kernel_rejected(self):
        trace = make_benchmark_trace("gzip", 16, 4000, seed=0)
        with pytest.raises(ConfigError):
            characterize_trace(trace, 16, interval_accesses=1000, kernel="turbo")
