"""Unit tests for repro.cache.cache (SetAssocCache)."""

from repro.cache.block import CacheLine
from repro.cache.cache import SetAssocCache
from repro.common.config import CacheGeometry


def small_cache():
    # 4 KB, 4-way, 64 B lines -> 16 sets.
    return SetAssocCache(CacheGeometry(size_bytes=4 << 10, assoc=4, line_bytes=64), "t")


class TestLookupFill:
    def test_miss_then_hit(self):
        c = small_cache()
        assert c.lookup(5) is None
        c.fill(CacheLine(addr=5))
        assert c.lookup(5) is not None
        assert c.stats.get("hits") == 1
        assert c.stats.get("misses") == 1

    def test_fill_evicts_lru_within_set(self):
        c = small_cache()
        base = 0
        for i in range(4):
            c.fill(CacheLine(addr=base + 16 * i))  # all set 0
        victim = c.fill(CacheLine(addr=base + 16 * 4))
        assert victim is not None
        assert victim.addr == 0

    def test_sets_are_independent(self):
        c = small_cache()
        for i in range(5):
            c.fill(CacheLine(addr=16 * i))  # set 0 x5 -> one eviction
        assert c.lookup(1) is None  # set 1 untouched
        assert c.occupancy() == 4

    def test_probe_does_not_touch(self):
        c = small_cache()
        for i in range(4):
            c.fill(CacheLine(addr=16 * i))
        c.probe(0)  # LRU stays LRU
        victim = c.fill(CacheLine(addr=16 * 4))
        assert victim.addr == 0

    def test_set_index_override(self):
        """Flipped-index placement: line lives in a set its index doesn't name."""
        c = small_cache()
        line = CacheLine(addr=2, cc=True, f=True)  # home set 2
        c.fill(line, set_index=3)
        assert c.probe(2) is None  # not in home set
        assert c.probe(2, set_index=3) is line
        assert c.invalidate(2, set_index=3) is line


class TestInvalidate:
    def test_invalidate_counts(self):
        c = small_cache()
        c.fill(CacheLine(addr=7))
        assert c.invalidate(7) is not None
        assert c.stats.get("invalidations") == 1
        assert c.invalidate(7) is None

    def test_clear(self):
        c = small_cache()
        c.fill(CacheLine(addr=1))
        c.clear()
        assert c.occupancy() == 0


class TestOccupancy:
    def test_cc_occupancy(self):
        c = small_cache()
        c.fill(CacheLine(addr=1))
        c.fill(CacheLine(addr=2, cc=True))
        assert c.occupancy() == 2
        assert c.cc_occupancy() == 1

    def test_resident_iterates_all(self):
        c = small_cache()
        for a in (1, 2, 35):
            c.fill(CacheLine(addr=a))
        assert sorted(l.addr for l in c.resident()) == [1, 2, 35]

    def test_at_lru_insertion(self):
        c = small_cache()
        c.fill(CacheLine(addr=0))
        c.fill(CacheLine(addr=16), at_lru=True)
        victim = c.fill(CacheLine(addr=32))
        assert victim is None  # set not yet full (4-way)
        c.fill(CacheLine(addr=48))
        victim = c.fill(CacheLine(addr=64))
        assert victim.addr == 16  # the at_lru line went first
