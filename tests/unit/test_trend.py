"""Unit tests for the perf-trend gate (:mod:`repro.analysis.trend`)."""

import json

import pytest

from repro.analysis.trend import (
    DEFAULT_BENCHES,
    TrendCheck,
    append_history,
    check_trend,
    compare_bench,
    history_record,
    load_history,
    render_trend,
    trend_ok,
)


def doc(geomean, scale="small", **extra):
    return {"geomean_speedup": geomean, "scale": scale, **extra}


class TestCompareBench:
    def test_within_tolerance_passes(self):
        check = compare_bench("sim_speed", doc(1.6), doc(1.5), tolerance=0.25)
        assert check.ok
        assert check.ratio == pytest.approx(1.5 / 1.6)

    def test_improvement_passes(self):
        assert compare_bench("sim_speed", doc(1.6), doc(2.4)).ok

    def test_regression_past_tolerance_fails(self):
        check = compare_bench("sim_speed", doc(2.0), doc(1.4), tolerance=0.25)
        assert not check.ok
        assert "regressed" in check.note

    def test_boundary_is_inclusive(self):
        # current == ref * (1 - tol) exactly: not *below* the floor -> ok.
        assert compare_bench("p", doc(2.0), doc(1.5), tolerance=0.25).ok

    def test_missing_reference_passes_with_note(self):
        check = compare_bench("profiler", None, doc(8.0))
        assert check.ok
        assert "no committed reference" in check.note

    def test_missing_current_fails(self):
        check = compare_bench("profiler", doc(8.0), None)
        assert not check.ok

    def test_scale_mismatch_skips(self):
        check = compare_bench("sim_speed", doc(1.6, scale="small"), doc(0.5, scale="tiny"))
        assert check.ok
        assert "not comparable" in check.note

    def test_malformed_artifact_fails(self):
        assert not compare_bench("sim_speed", doc(1.6), {"scale": "small"}).ok


class TestCheckTrend:
    def test_reads_artifacts_from_directories(self, tmp_path):
        ref, cur = tmp_path / "ref", tmp_path / "cur"
        ref.mkdir(), cur.mkdir()
        (ref / "BENCH_sim_speed.json").write_text(json.dumps(doc(2.0)))
        (cur / "BENCH_sim_speed.json").write_text(json.dumps(doc(1.9)))
        (ref / "BENCH_profiler.json").write_text(json.dumps(doc(8.0)))
        (cur / "BENCH_profiler.json").write_text(json.dumps(doc(4.0)))
        checks = check_trend(ref, cur, tolerance=0.25)
        assert [c.bench for c in checks] == list(DEFAULT_BENCHES)
        assert [c.ok for c in checks] == [True, False]
        assert not trend_ok(checks)
        assert trend_ok(checks, relax=True)

    def test_committed_refs_compare_clean_against_themselves(self):
        """The in-repo reference artifacts always pass against themselves —
        guards the artifact schema the gate depends on."""
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
        checks = check_trend(bench_dir, bench_dir)
        assert all(c.ok for c in checks), [c.note for c in checks]

    def test_unreadable_artifact_is_failing_check_not_crash(self, tmp_path):
        """A torn BENCH json surfaces as a failed check (warn-only under
        relax), never as an unhandled JSONDecodeError."""
        ref, cur = tmp_path / "ref", tmp_path / "cur"
        ref.mkdir(), cur.mkdir()
        (ref / "BENCH_sim_speed.json").write_text('{"geomean_speedup": 2.0, "sca')
        (cur / "BENCH_sim_speed.json").write_text(json.dumps(doc(2.0)))
        checks = check_trend(ref, cur, benches=("sim_speed",))
        assert not checks[0].ok
        assert "unreadable artifact" in checks[0].note
        assert not trend_ok(checks)
        assert trend_ok(checks, relax=True)

    def test_render_mentions_relaxed_failures(self):
        checks = [TrendCheck("sim_speed", False, "geomean_speedup regressed")]
        assert "FAIL" in render_trend(checks)
        assert "WARN" in render_trend(checks, relax=True)


class TestHistory:
    def test_record_keeps_headline_fields(self, tmp_path):
        (tmp_path / "BENCH_sim_speed.json").write_text(
            json.dumps(doc(1.5, relaxed_timing=False))
        )
        rec = history_record(tmp_path, ["sim_speed"], rev="abc123", note="n")
        assert rec["rev"] == "abc123"
        assert rec["note"] == "n"
        assert rec["benches"]["sim_speed"] == {
            "geomean_speedup": 1.5,
            "scale": "small",
            "relaxed_timing": False,
        }

    def test_missing_bench_recorded_as_hole(self, tmp_path):
        rec = history_record(tmp_path, ["sim_speed", "profiler"])
        assert rec["benches"] == {"sim_speed": None, "profiler": None}

    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "history.jsonl"
        append_history(path, {"rev": "a"})
        append_history(path, {"rev": "b"})
        assert [e["rev"] for e in load_history(path)] == ["a", "b"]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "none.jsonl") == []

    def test_load_skips_torn_last_line(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, {"rev": "a"})
        with open(path, "a") as fh:
            fh.write('{"rev": "tor')  # crash mid-append
        assert [e["rev"] for e in load_history(path)] == ["a"]

    def test_committed_history_file_is_loadable(self):
        from pathlib import Path

        history = Path(__file__).resolve().parents[2] / "benchmarks" / "history.jsonl"
        entries = load_history(history)
        assert entries, "benchmarks/history.jsonl should hold at least the seed entry"
        assert all("benches" in e for e in entries)


class TestTrendScript:
    def test_cli_script_pass_and_fail(self, tmp_path, monkeypatch):
        import importlib.util
        from pathlib import Path

        script = Path(__file__).resolve().parents[2] / "benchmarks" / "trend.py"
        spec = importlib.util.spec_from_file_location("bench_trend", script)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        ref, cur, good = tmp_path / "ref", tmp_path / "cur", tmp_path / "good"
        ref.mkdir(), cur.mkdir(), good.mkdir()
        for d, val in ((ref, 2.0), (cur, 0.5), (good, 2.1)):
            (d / "BENCH_sim_speed.json").write_text(json.dumps(doc(val)))
            (d / "BENCH_profiler.json").write_text(json.dumps(doc(val * 4)))

        monkeypatch.delenv("REPRO_BENCH_RELAX", raising=False)
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        assert mod.main(["--ref", str(ref), "--current", str(good)]) == 0
        assert mod.main(["--ref", str(ref), "--current", str(cur)]) == 1
        monkeypatch.setenv("REPRO_BENCH_RELAX", "1")
        assert mod.main(["--ref", str(ref), "--current", str(cur)]) == 0

        # --append records the run (regressions included) as one JSON line.
        history = tmp_path / "history.jsonl"
        mod.main(["--ref", str(ref), "--current", str(cur), "--append", str(history)])
        mod.main(["--ref", str(ref), "--current", str(good), "--append", str(history)])
        from repro.analysis.trend import load_history

        entries = load_history(history)
        assert len(entries) == 2
        assert entries[0]["benches"]["sim_speed"]["geomean_speedup"] == 0.5
        assert entries[1]["benches"]["sim_speed"]["geomean_speedup"] == 2.1

    def test_cli_script_refuses_vacuous_defaults(self, tmp_path, monkeypatch):
        """Comparing a directory against itself (or running without any
        current dir) is refused — it could only ever print a false green."""
        import importlib.util
        from pathlib import Path

        script = Path(__file__).resolve().parents[2] / "benchmarks" / "trend.py"
        spec = importlib.util.spec_from_file_location("bench_trend2", script)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        ref = tmp_path / "ref"
        ref.mkdir()
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        with pytest.raises(SystemExit):
            mod.main(["--ref", str(ref)])  # no current dir anywhere
        with pytest.raises(SystemExit):
            mod.main(["--ref", str(ref), "--current", str(ref)])  # self-compare
