"""Unit tests for the sensitivity experiment drivers."""

from tests.helpers import tiny_system

from repro.experiments.runner import RunPlan
from repro.experiments.sensitivity import sweep_remote_latency, toggle_bus_contention

PLAN = RunPlan(n_accesses=2_000, target_instructions=25_000, warmup_instructions=15_000)


class TestRemoteLatencySweep:
    def test_points_labelled_and_ordered(self):
        points = sweep_remote_latency(tiny_system(), PLAN, latencies=(20, 60))
        assert [p.label for p in points] == ["remote=20", "remote=60"]
        assert all(p.throughput_vs_l2p > 0 for p in points)

    def test_cheaper_remote_never_worse(self):
        points = sweep_remote_latency(tiny_system(), PLAN, latencies=(15, 200))
        assert points[0].throughput_vs_l2p >= points[1].throughput_vs_l2p - 1e-9


class TestBusContentionToggle:
    def test_table_shape(self):
        table = toggle_bus_contention(tiny_system(), PLAN, schemes=("cc", "snug"))
        assert set(table) == {"cc", "snug"}
        for vals in table.values():
            assert set(vals) == {False, True}
            assert all(v > 0 for v in vals.values())
