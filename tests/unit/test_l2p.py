"""Unit tests for the L2P private baseline."""

from tests.helpers import addr, fill_set, tiny_system

from repro.schemes.base import Outcome
from repro.schemes.l2p import PrivateL2


def make():
    return PrivateL2(tiny_system())


class TestBasics:
    def test_cold_miss_goes_to_memory(self):
        s = make()
        res = s.access(0, addr(0, 0, 0), False, 0)
        assert res.outcome is Outcome.MEMORY
        assert res.latency == s.config.latency.dram

    def test_hit_after_fill(self):
        s = make()
        a = addr(0, 3, 1)
        s.access(0, a, False, 0)
        res = s.access(0, a, False, 400)
        assert res.outcome is Outcome.LOCAL_HIT
        assert res.latency == s.config.latency.l2_local

    def test_no_sharing_between_cores(self):
        s = make()
        a0 = addr(0, 0, 5)
        s.access(0, a0, False, 0)
        # Core 1's access to its own copy of the "same" block is a fresh miss.
        res = s.access(1, addr(1, 0, 5), False, 500)
        assert res.outcome is Outcome.MEMORY

    def test_capacity_eviction(self):
        s = make()
        fill_set(s, 0, 0, 5)  # 5 blocks into a 4-way set
        res = s.access(0, addr(0, 0, 0), False, 10_000)
        assert res.outcome is Outcome.MEMORY  # LRU evicted, re-fetch


class TestWrites:
    def test_write_marks_dirty(self):
        s = make()
        a = addr(0, 2, 0)
        s.access(0, a, True, 0)
        assert s.slices[0].probe(a).dirty

    def test_read_then_write_dirties(self):
        s = make()
        a = addr(0, 2, 0)
        s.access(0, a, False, 0)
        s.access(0, a, True, 400)
        assert s.slices[0].probe(a).dirty

    def test_dirty_eviction_enters_write_buffer(self):
        s = make()
        s.access(0, addr(0, 1, 0), True, 0)
        fill_set(s, 0, 1, 4, t0=400, start_tag=1)  # evicts the dirty block
        assert s.stats.flatten().get("wbuf_0.deposits", 0) == 1
        assert s.stats.flatten().get("l2_0.writebacks", 0) == 1

    def test_write_buffer_direct_read(self):
        s = make()
        a = addr(0, 1, 0)
        s.access(0, a, True, 0)
        fill_set(s, 0, 1, 4, t0=400, start_tag=1)
        # Re-read promptly: the dirty victim is still buffered.
        res = s.access(0, a, False, 450)
        assert res.outcome is Outcome.WBUF_HIT
        # It returns dirty (newer than memory).
        assert s.slices[0].probe(a).dirty


class TestStats:
    def test_dram_fetch_count(self):
        s = make()
        s.access(0, addr(0, 0, 0), False, 0)
        s.access(0, addr(0, 0, 1), False, 400)
        assert s.flat_stats()["l2_0.dram_fetches"] == 2

    def test_result_hit_on_chip_flag(self):
        s = make()
        a = addr(0, 0, 0)
        assert not s.access(0, a, False, 0).hit_on_chip
        assert s.access(0, a, False, 400).hit_on_chip
