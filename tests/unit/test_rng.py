"""Unit tests for repro.common.rng."""

import numpy as np
import pytest

from repro.common.rng import RngFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_master_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_high_bits_of_master_matter(self):
        assert derive_seed(1 << 40, "x") != derive_seed(0, "x")

    def test_non_negative(self):
        for s in (0, 7, 123456789):
            assert derive_seed(s, "n") >= 0


class TestRngFactory:
    def test_same_stream_reproducible(self):
        f = RngFactory(7)
        a = f.stream("w", "ammp", 0).integers(0, 1000, 20)
        b = f.stream("w", "ammp", 0).integers(0, 1000, 20)
        assert (a == b).all()

    def test_different_streams_differ(self):
        f = RngFactory(7)
        a = f.stream("w", "ammp", 0).integers(0, 1000, 20)
        b = f.stream("w", "ammp", 1).integers(0, 1000, 20)
        assert not (a == b).all()

    def test_different_masters_differ(self):
        a = RngFactory(1).stream("x").random(10)
        b = RngFactory(2).stream("x").random(10)
        assert not np.allclose(a, b)

    def test_negative_master_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(-1)

    def test_returns_numpy_generator(self):
        assert isinstance(RngFactory(0).stream("a"), np.random.Generator)
