"""Unit tests for repro.analysis.overhead (Formula 6, Tables 2-3)."""

import pytest

from repro.analysis.overhead import SnugOverheadModel
from repro.common.config import CacheGeometry, SnugConfig


class TestTable2Fields:
    def test_paper_field_lengths(self):
        """Table 2: 32-bit address, 1 MB/16-way/64 B => 16-bit tags, 4-bit LRU."""
        model = SnugOverheadModel(CacheGeometry(), address_bits=32)
        f = model.field_lengths()
        assert f.tag_bits == 16
        assert f.index_bits == 10
        assert f.offset_bits == 6
        assert f.lru_bits == 4
        assert f.counter_bits == 4
        assert f.mod_p_bits == 3  # p = 8
        assert f.data_bits == 512

    def test_line_and_entry_bits(self):
        model = SnugOverheadModel()
        f = model.field_lengths()
        # L2 line: 512 data + 16 tag + v+d+cc+f + 4 LRU = 536.
        assert f.l2_line_bits() == 536
        # Shadow entry: 16 tag + 1 v + 4 LRU = 21.
        assert f.shadow_entry_bits() == 21

    def test_set_level_storage(self):
        model = SnugOverheadModel()
        assert model.l2_set_bits() == 536 * 16 + 1
        assert model.shadow_set_bits() == 21 * 16 + 4 + 3


class TestTable3:
    def test_32bit_64B_is_3_9_pct(self):
        model = SnugOverheadModel(CacheGeometry(line_bytes=64), address_bits=32)
        assert model.overhead() == pytest.approx(0.039, abs=0.002)

    def test_44bit_64B_is_5_8_pct(self):
        model = SnugOverheadModel(CacheGeometry(line_bytes=64), address_bits=44)
        assert model.overhead() == pytest.approx(0.058, abs=0.002)

    def test_32bit_128B_is_2_1_pct(self):
        model = SnugOverheadModel(CacheGeometry(line_bytes=128), address_bits=32)
        assert model.overhead() == pytest.approx(0.021, abs=0.002)

    def test_44bit_128B_is_3_1_pct(self):
        model = SnugOverheadModel(CacheGeometry(line_bytes=128), address_bits=44)
        assert model.overhead() == pytest.approx(0.031, abs=0.002)

    def test_table3_grid(self):
        grid = SnugOverheadModel.table3()
        assert set(grid) == {(32, 64), (32, 128), (44, 64), (44, 128)}
        # Larger lines amortize the shadow tags; longer addresses inflate them.
        assert grid[(32, 128)] < grid[(32, 64)] < grid[(44, 64)]

    def test_overhead_in_paper_range(self):
        """Section 3.4: 'the SNUG overhead falls in the range of 2-6%'."""
        for v in SnugOverheadModel.table3().values():
            assert 0.02 <= v <= 0.06


class TestEdgeCases:
    def test_address_too_narrow(self):
        with pytest.raises(ValueError):
            SnugOverheadModel(CacheGeometry(), address_bits=16).field_lengths()

    def test_custom_counter_width(self):
        model = SnugOverheadModel(snug=SnugConfig(counter_bits=8, p_threshold=16))
        f = model.field_lengths()
        assert f.counter_bits == 8
        assert f.mod_p_bits == 4
