"""Unit tests for repro.analysis.metrics (Table 5)."""

import pytest

from repro.analysis.metrics import (
    average_weighted_speedup,
    fair_speedup,
    geometric_mean,
    normalized_throughput,
    throughput,
)


class TestThroughput:
    def test_sum(self):
        assert throughput([0.5, 0.5, 1.0, 1.0]) == pytest.approx(3.0)

    def test_normalized(self):
        assert normalized_throughput([2.0, 2.0], [1.0, 1.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            throughput([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            throughput([1.0, 0.0])


class TestAws:
    def test_identity(self):
        assert average_weighted_speedup([1, 2], [1, 2]) == pytest.approx(1.0)

    def test_mean_of_relatives(self):
        # relatives 2.0 and 0.5 -> arithmetic mean 1.25
        assert average_weighted_speedup([2.0, 0.5], [1.0, 1.0]) == pytest.approx(1.25)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            average_weighted_speedup([1.0], [1.0, 2.0])


class TestFairSpeedup:
    def test_harmonic_mean(self):
        # relatives 2.0 and 0.5 -> harmonic mean 0.8
        assert fair_speedup([2.0, 0.5], [1.0, 1.0]) == pytest.approx(0.8)

    def test_fs_penalizes_imbalance_vs_aws(self):
        ipc, base = [4.0, 0.25], [1.0, 1.0]
        assert fair_speedup(ipc, base) < average_weighted_speedup(ipc, base)

    def test_identity(self):
        assert fair_speedup([0.3, 0.7], [0.3, 0.7]) == pytest.approx(1.0)


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_below_arithmetic(self):
        vals = [0.9, 1.1, 1.3]
        assert geometric_mean(vals) <= sum(vals) / 3
