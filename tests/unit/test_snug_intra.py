"""Unit tests for the SNUG-Intra future-work extension."""

from dataclasses import replace

from tests.helpers import addr, fill_set, tiny_system

from repro.schemes.base import Outcome
from repro.schemes.snug import STAGE_GROUP
from repro.schemes.snug_intra import SnugIntraCache


def make(**snug_overrides):
    cfg = tiny_system()
    if snug_overrides:
        cfg = cfg.with_(snug=replace(cfg.snug, **snug_overrides))
    return SnugIntraCache(cfg)


def enter_group(scheme):
    scheme._advance_stage(scheme.snug_cfg.identify_cycles)
    assert scheme.stage == STAGE_GROUP


class TestIntraSpill:
    def test_local_flipped_giver_preferred(self):
        s = make()
        enter_group(s)
        s.meta[0].gt_taker[4] = True  # own set 4 is a taker; set 5 a giver
        fill_set(s, 0, 4, 5, t0=2_000)  # one clean eviction
        stats = s.flat_stats()
        assert stats["l2_0.spills_intra"] == 1
        assert stats.get("l2_0.spills_out", 0) == 0  # never went on the bus
        hosted = [l for l in s.slices[0].resident() if l.cc]
        assert len(hosted) == 1
        assert hosted[0].f is True
        assert hosted[0].owner == 0
        assert s.slices[0].probe(hosted[0].addr, set_index=5) is hosted[0]

    def test_falls_back_to_inter_when_local_flip_is_taker(self):
        s = make()
        enter_group(s)
        s.meta[0].gt_taker[4] = True
        s.meta[0].gt_taker[5] = True  # local fallback blocked
        fill_set(s, 0, 4, 5, t0=2_000)
        stats = s.flat_stats()
        assert stats.get("l2_0.spills_intra", 0) == 0
        assert stats["l2_0.spills_out"] == 1  # inter-cache path used

    def test_no_bus_traffic_for_intra_spill(self):
        s = make()
        enter_group(s)
        s.meta[0].gt_taker[4] = True
        before = s.flat_stats().get("bus.snoops", 0)
        fill_set(s, 0, 4, 5, t0=2_000)
        # Only demand misses snoop; the intra spill itself is bus-free.
        assert s.flat_stats().get("bus.transfers", 0) == 0


class TestIntraRetrieval:
    def test_local_hit_at_local_latency(self):
        s = make()
        enter_group(s)
        s.meta[0].gt_taker[4] = True
        victim = addr(0, 4, 0)
        fill_set(s, 0, 4, 5, t0=2_000)  # victim parked in local set 5
        res = s.access(0, victim, False, 5_000)
        assert res.outcome is Outcome.LOCAL_HIT
        assert res.latency == s.config.latency.l2_local
        assert s.flat_stats()["l2_0.intra_hits"] == 1
        # Re-homed: back in set 4, no cc copy left in set 5.
        assert s.slices[0].probe(victim) is not None
        assert s.slices[0].probe(victim, set_index=5) is None

    def test_write_retrieval_dirties_home_copy(self):
        s = make()
        enter_group(s)
        s.meta[0].gt_taker[4] = True
        victim = addr(0, 4, 0)
        fill_set(s, 0, 4, 5, t0=2_000)
        s.access(0, victim, True, 5_000)
        assert s.slices[0].probe(victim).dirty

    def test_beats_plain_snug_on_checkerboard(self):
        """Alternating taker/giver sets in all four identical programs:
        intra grouping converts 40-cycle remote hits into 10-cycle local
        ones and never loses a spill to bus-order contention."""
        from repro.core.cmp import CmpSystem
        from repro.schemes.snug import SnugCache
        from repro.workloads.synthetic import Band, Phase, WorkloadSpec, generate_trace
        import numpy as np

        cfg = tiny_system()
        spec = WorkloadSpec(
            name="checker-intra",
            phases=(Phase(bands=(Band(1.0, 7, 7),), random_frac=0.2),),
            mean_gap=10.0,
            write_fraction=0.1,
        )
        base_traces = []
        for core in range(4):
            t = generate_trace(spec, cfg.l2.num_sets, 4_000, seed=core)
            addrs = t.addrs.copy()
            sets = addrs % cfg.l2.num_sets
            tags = addrs // cfg.l2.num_sets
            odd = (sets % 2) == 1
            tags[odd] = tags[odd] % 1  # odd sets: single-block givers
            base_traces.append(
                type(t)(t.gaps, tags * cfg.l2.num_sets + sets, t.writes).rebase(core)
            )
        results = {}
        for cls in (SnugCache, SnugIntraCache):
            res = CmpSystem(cfg, cls(cfg), base_traces).run(
                30_000, warmup_instructions=20_000
            )
            results[cls.name] = res.throughput
        assert results["snug_intra"] >= results["snug"]
