"""Unit tests for the durable job database (:mod:`repro.service.jobs`).

The journal is the service's source of truth, so these tests pin the three
properties everything else leans on: the lifecycle state machine admits
exactly the documented edges (terminal exactly once), every mutation is a
complete atomic on-disk snapshot, and reopening a database recovers
interrupted jobs to ``queued`` without touching terminal ones.
"""

import json

import pytest

from repro.common.errors import ServiceError
from repro.service.jobs import JOB_STATES, TERMINAL_STATES, JobDB, JobRecord


def _db(tmp_path, **kwargs):
    kwargs.setdefault("sync", False)
    return JobDB(tmp_path / "svc", **kwargs)


def _submit(db, *, submitter="alice", scenario_hash="h1"):
    return db.create({"name": "s"}, scenario_hash, submitter, scenario_name="s")


class TestJobRecordStateMachine:
    def test_happy_path(self):
        record = JobRecord("job-000001", "h", {}, "alice")
        for state in ("queued", "running", "done"):
            record.transition(state)
        assert record.terminal
        assert record.history == ["submitted", "queued", "running", "done"]

    def test_requeue_edge(self):
        record = JobRecord("job-000001", "h", {}, "alice")
        record.transition("queued")
        record.transition("running")
        record.transition("queued")  # worker death requeue
        record.transition("running")
        record.transition("done")
        assert record.state == "done"

    @pytest.mark.parametrize("terminal", sorted(TERMINAL_STATES))
    def test_terminal_exactly_once(self, terminal):
        record = JobRecord("job-000001", "h", {}, "alice")
        record.transition("queued")
        record.transition(terminal)
        for target in JOB_STATES:
            with pytest.raises(ServiceError):
                record.transition(target)
        assert record.state == terminal  # the failed attempts changed nothing

    def test_illegal_edges_rejected(self):
        record = JobRecord("job-000001", "h", {}, "alice")
        with pytest.raises(ServiceError):
            record.transition("running")  # submitted -> running skips queued
        with pytest.raises(ServiceError):
            record.transition("submitted")  # no re-entry
        with pytest.raises(ServiceError):
            record.transition("sleeping")  # unknown state

    def test_round_trip(self):
        record = JobRecord("job-000007", "h", {"k": 1}, "bob", cost=3.5)
        record.transition("queued")
        clone = JobRecord.from_dict(record.to_dict())
        assert clone.to_dict() == record.to_dict()

    def test_from_dict_ignores_unknown_fields(self):
        # Forward compatibility: a newer server's journal must still load.
        payload = JobRecord("job-000001", "h", {}, "alice").to_dict()
        payload["future_field"] = "ignored"
        assert JobRecord.from_dict(payload).job_id == "job-000001"


class TestJobDB:
    def test_create_allocates_sequential_ids(self, tmp_path):
        db = _db(tmp_path)
        ids = [_submit(db).job_id for _ in range(3)]
        assert ids == ["job-000001", "job-000002", "job-000003"]

    def test_get_unknown_id(self, tmp_path):
        with pytest.raises(ServiceError, match="unknown job id"):
            _db(tmp_path).get("job-999999")

    def test_transition_journals_fields_atomically(self, tmp_path):
        db = _db(tmp_path)
        record = _submit(db)
        db.transition(record.job_id, "queued", cost=2.0)
        on_disk = json.loads((db.jobs_dir / f"{record.job_id}.json").read_text())
        assert on_disk["state"] == "queued"
        assert on_disk["cost"] == 2.0

    def test_transition_rejects_unknown_field(self, tmp_path):
        db = _db(tmp_path)
        record = _submit(db)
        with pytest.raises(ServiceError, match="no field"):
            db.transition(record.job_id, "queued", nonsense=1)

    def test_reopen_preserves_records_and_counter(self, tmp_path):
        db = _db(tmp_path)
        record = _submit(db)
        db.transition(record.job_id, "queued")
        db.transition(record.job_id, "running")
        db.transition(record.job_id, "done")

        reopened = _db(tmp_path)
        assert reopened.get(record.job_id).state == "done"
        assert reopened.create({}, "h2", "bob").job_id == "job-000002"

    def test_reopen_requeues_interrupted_jobs(self, tmp_path):
        db = _db(tmp_path)
        running = _submit(db, scenario_hash="h1")
        db.transition(running.job_id, "queued")
        db.transition(running.job_id, "running", attempts=1)
        submitted = _submit(db, scenario_hash="h2")
        done = _submit(db, scenario_hash="h3")
        db.transition(done.job_id, "queued")
        db.transition(done.job_id, "running")
        db.transition(done.job_id, "done")

        recovered = _db(tmp_path)
        assert sorted(recovered.recovered) == [running.job_id, submitted.job_id]
        assert recovered.get(running.job_id).state == "queued"
        assert recovered.get(running.job_id).attempts == 1  # history survives
        assert recovered.get(submitted.job_id).state == "queued"
        assert recovered.get(done.job_id).state == "done"
        # The requeue is durable, not just in-memory.
        assert _db(tmp_path).recovered == []

    def test_corrupt_record_fails_loudly(self, tmp_path):
        db = _db(tmp_path)
        record = _submit(db)
        (db.jobs_dir / f"{record.job_id}.json").write_text("{torn")
        with pytest.raises(ServiceError, match="unreadable job record"):
            _db(tmp_path)

    def test_update_progress_journals(self, tmp_path):
        db = _db(tmp_path)
        record = _submit(db)
        db.transition(record.job_id, "queued")
        db.update_progress(record.job_id, 3, 7)
        reopened = _db(tmp_path)
        assert reopened.get(record.job_id).progress_done == 3
        assert reopened.get(record.job_id).progress_total == 7

    def test_by_hash(self, tmp_path):
        db = _db(tmp_path)
        a = _submit(db, scenario_hash="h1")
        _submit(db, scenario_hash="h2")
        b = _submit(db, scenario_hash="h1", submitter="bob")
        assert [r.job_id for r in db.by_hash("h1")] == [a.job_id, b.job_id]
