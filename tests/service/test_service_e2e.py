"""End-to-end service tests: real server, real sockets, real engine.

Each test starts a :class:`SimulationService` on a loopback port and
drives it through :class:`ServiceClient` connections, pinning the
acceptance criteria of the service front door:

* **coalescing** — N concurrent clients submitting identical scenarios
  produce exactly one engine invocation, and every client fetches
  bit-identical payload bytes;
* **cache** — re-submitting a scenario whose ``content_hash()`` is sealed
  returns ``done`` instantly without invoking the engine (counted via a
  monkeypatched :func:`repro.service.server.simulate_job`);
* **worker death** — an attempt that dies mid-job requeues (not lost, not
  duplicated) and the retry resumes the partial store, completing
  bit-identical to an uninterrupted run;
* **cancel** — cooperative abort through the progress tap;
* **auth** — a wrong shared secret is rejected at the handshake.

The scenarios are deliberately small (one mix, 1–2 schemes, short plans)
so the suite stays in tier-1 time budgets.
"""

import threading
import time

import pytest

from repro.common.errors import AuthError, ServiceError
from repro.experiments.runner import RunPlan
from repro.scenario.model import Scenario
from repro.scenario.system import SystemSpec
from repro.scenario.workload import WorkloadSpec
from repro.service import ServiceClient, SimulationService
from repro.service import server as server_module


def tiny_scenario(seed=7, mix="c5_0", schemes=("l2p", "l2s")):
    """A deliberately small but real scenario (one mix, short plan)."""
    return Scenario(
        name=f"e2e-{mix}-{seed}",
        system=SystemSpec(scale="tiny", seed=seed),
        workload=WorkloadSpec(mixes=(mix,)),
        schemes=tuple(schemes),
        plan=RunPlan(
            n_accesses=1_200,
            target_instructions=20_000,
            warmup_instructions=10_000,
            seed=seed,
        ),
    )


def start_service(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("sync", False)
    return SimulationService(tmp_path / "svc", port=0, **kwargs)


def counting_engine(monkeypatch):
    """Patch the server's engine entry with an invocation counter."""
    real = server_module.simulate_job
    calls = []

    def counted(scenario, store_path, **kwargs):
        calls.append(scenario.content_hash())
        return real(scenario, store_path, **kwargs)

    monkeypatch.setattr(server_module, "simulate_job", counted)
    return calls


class TestConcurrentClients:
    def test_identical_scenarios_coalesce_bit_identical(self, tmp_path, monkeypatch):
        calls = counting_engine(monkeypatch)
        scenario_a = tiny_scenario(seed=7)
        scenario_b = tiny_scenario(seed=8)  # distinct hash
        assert scenario_a.content_hash() != scenario_b.content_hash()

        with start_service(tmp_path) as service:
            results = {}
            errors = []

            def client_thread(index, scenario):
                try:
                    with ServiceClient(
                        "127.0.0.1", service.port, submitter=f"user{index}"
                    ) as client:
                        job = client.submit(scenario)
                        final = client.wait(job["job_id"], timeout=180)
                        assert final["state"] == "done", final
                        _job, payloads = client.result(job["job_id"])
                        results[index] = (job, payloads)
                except Exception as exc:  # surfaced below
                    errors.append((index, exc))

            threads = [
                threading.Thread(
                    target=client_thread,
                    args=(index, scenario_a if index % 2 == 0 else scenario_b),
                )
                for index in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180)
            assert not errors, errors
            assert len(results) == 6

        # One engine invocation per distinct hash, no matter the fan-in.
        assert sorted(calls) == sorted(
            [scenario_a.content_hash(), scenario_b.content_hash()]
        )
        # Every client of one scenario got byte-identical payloads.
        for group_seed, indices in ((7, (0, 2, 4)), (8, (1, 3, 5))):
            reference = results[indices[0]][1]
            assert reference, f"no payloads for seed {group_seed}"
            for index in indices[1:]:
                assert results[index][1] == reference
        # And the deduped jobs say so on their records.
        dedup_flags = sorted(
            results[index][0]["deduplicated"] for index in (0, 2, 4)
        )
        assert dedup_flags == [False, True, True]

    def test_cache_hit_skips_engine(self, tmp_path, monkeypatch):
        calls = counting_engine(monkeypatch)
        scenario = tiny_scenario(seed=9, schemes=("l2p",))
        with start_service(tmp_path) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                first = client.submit(scenario)
                done = client.wait(first["job_id"], timeout=180)
                assert done["state"] == "done"
                assert not done["deduplicated"]
                assert len(calls) == 1

                second = client.submit(scenario)
                # Instantly terminal: no queue, no wait, no engine.
                assert second["state"] == "done"
                assert second["deduplicated"]
                assert second["progress_done"] == second["progress_total"] > 0
                assert len(calls) == 1

                _job1, payloads1 = client.result(first["job_id"])
                _job2, payloads2 = client.result(second["job_id"])
                assert payloads1 == payloads2

    def test_progress_streams_per_task(self, tmp_path):
        scenario = tiny_scenario(seed=11)
        with start_service(tmp_path) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                job = client.submit(scenario)
                final = client.wait(job["job_id"], timeout=180)
        # One mix x (l2p, l2s) = 2 tasks, all journaled as completed.
        assert final["progress_total"] == 2
        assert final["progress_done"] == 2


class TestWorkerDeath:
    def test_death_mid_job_requeues_and_completes_bit_identical(
        self, tmp_path, monkeypatch
    ):
        scenario = tiny_scenario(seed=13, schemes=("l2p", "l2s"))
        real = server_module.simulate_job
        state = {"deaths": 0}

        def dying_engine(scenario_arg, store_path, *, progress=None, **kwargs):
            if state["deaths"] == 0:
                # Die after the first task's result is durably stored.
                def lethal_tap(task_id, done, total):
                    if progress is not None:
                        progress(task_id, done, total)
                    if done >= 1:
                        state["deaths"] += 1
                        raise RuntimeError("simulated worker death")

                return real(scenario_arg, store_path, progress=lethal_tap, **kwargs)
            return real(scenario_arg, store_path, progress=progress, **kwargs)

        monkeypatch.setattr(server_module, "simulate_job", dying_engine)
        with start_service(tmp_path, workers=1) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                job = client.submit(scenario)
                final = client.wait(job["job_id"], timeout=180)
                assert final["state"] == "done"
                # Requeued exactly once: two claims, one death, no dupes.
                assert state["deaths"] == 1
                assert final["attempts"] == 2
                _job, payloads = client.result(job["job_id"])

        # Bit-identical to an uninterrupted run in a fresh service.
        with start_service(tmp_path / "control") as control:
            with ServiceClient("127.0.0.1", control.port) as client:
                job2 = client.submit(scenario)
                assert client.wait(job2["job_id"], timeout=180)["state"] == "done"
                _job2, control_payloads = client.result(job2["job_id"])
        assert payloads == control_payloads

    def test_repeated_death_fails_terminally(self, tmp_path, monkeypatch):
        scenario = tiny_scenario(seed=17, schemes=("l2p",))

        def always_dying(scenario_arg, store_path, **kwargs):
            raise RuntimeError("hardware on fire")

        monkeypatch.setattr(server_module, "simulate_job", always_dying)
        with start_service(tmp_path, workers=1, max_attempts=2) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                job = client.submit(scenario)
                final = client.wait(job["job_id"], timeout=60)
        assert final["state"] == "failed"
        assert final["attempts"] == 2
        assert "hardware on fire" in final["error"]


class TestCancel:
    def test_cancel_running_job_aborts_engine(self, tmp_path, monkeypatch):
        started = threading.Event()

        def endless_engine(scenario_arg, store_path, *, progress=None, **kwargs):
            started.set()
            for tick in range(2_000):  # bounded: the tap aborts us long before
                if progress is not None:
                    progress("fake-task", tick, 2_000)
                time.sleep(0.01)
            raise RuntimeError("cancel never arrived")

        monkeypatch.setattr(server_module, "simulate_job", endless_engine)
        scenario = tiny_scenario(seed=19, schemes=("l2p",))
        with start_service(tmp_path, workers=1) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                job = client.submit(scenario)
                assert started.wait(timeout=30)
                cancelled, record = client.cancel(job["job_id"])
                assert cancelled
                assert record["state"] == "cancelled"
                final = client.wait(job["job_id"], timeout=30)
                assert final["state"] == "cancelled"
                with pytest.raises(ServiceError, match="not done"):
                    client.result(job["job_id"])

    def test_cancel_queued_job_never_runs(self, tmp_path, monkeypatch):
        calls = counting_engine(monkeypatch)
        blocker = threading.Event()
        release = threading.Event()
        real = server_module.simulate_job

        def gated_engine(scenario_arg, store_path, **kwargs):
            blocker.set()
            release.wait(timeout=60)
            return real(scenario_arg, store_path, **kwargs)

        monkeypatch.setattr(server_module, "simulate_job", gated_engine)
        occupier = tiny_scenario(seed=23, schemes=("l2p",))
        victim = tiny_scenario(seed=29, schemes=("l2p",))
        with start_service(tmp_path, workers=1) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                first = client.submit(occupier)
                assert blocker.wait(timeout=30)  # worker busy
                second = client.submit(victim)
                cancelled, record = client.cancel(second["job_id"])
                assert cancelled and record["state"] == "cancelled"
                release.set()
                assert client.wait(first["job_id"], timeout=180)["state"] == "done"
        assert victim.content_hash() not in calls  # never claimed


class TestAuth:
    def test_wrong_secret_rejected(self, tmp_path):
        with start_service(tmp_path, secret="right-secret") as service:
            with pytest.raises(AuthError):
                ServiceClient("127.0.0.1", service.port, secret="wrong-secret")

    def test_matching_secret_encrypts_and_serves(self, tmp_path):
        scenario = tiny_scenario(seed=31, schemes=("l2p",))
        with start_service(tmp_path, secret="shared-secret") as service:
            with ServiceClient(
                "127.0.0.1", service.port, secret="shared-secret"
            ) as client:
                assert client._cipher is not None  # payloads are encrypted
                job = client.submit(scenario)
                final = client.wait(job["job_id"], timeout=180)
                assert final["state"] == "done"
                _job, payloads = client.result(job["job_id"])
                assert payloads
