"""Unit tests for the scenario-hash result cache (:mod:`repro.service.cache`).

The cache's one hard promise: a hash reads as a hit only after its store
was sealed complete, and the sealed payload bytes are exactly the store's
canonical record bodies.
"""

import pytest

from repro.engine.store import ResultStore
from repro.service.cache import ResultCache


def _write_store(path, task_ids):
    store = ResultStore(path)
    store.initialize({"config": {}, "plan": {}, "schemes": list(task_ids)})
    for task_id in task_ids:
        store.save(task_id, {"task": {"id": task_id}, "result": {"v": task_id}})
    store.close()


class TestResultCache:
    def test_miss_without_marker(self, tmp_path):
        cache = ResultCache(tmp_path, sync=False)
        assert cache.lookup("h1") is None
        _write_store(cache.store_path("h1"), ["a"])
        # A complete-looking store is STILL a miss until sealed: only the
        # marker proves every task landed.
        assert cache.lookup("h1") is None

    def test_seal_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path, sync=False)
        _write_store(cache.store_path("h1"), ["a", "b"])
        sealed = cache.seal("h1", extra={"tasks": 2})
        assert cache.lookup("h1") == sealed
        assert cache.marker("h1")["tasks"] == 2
        assert cache.entries() == ["h1"]

    def test_seal_requires_store_directory(self, tmp_path):
        cache = ResultCache(tmp_path, sync=False)
        with pytest.raises(FileNotFoundError):
            cache.seal("missing")

    def test_payloads_are_store_record_bytes(self, tmp_path):
        cache = ResultCache(tmp_path, sync=False)
        _write_store(cache.store_path("h1"), ["a", "b"])
        cache.seal("h1")
        payloads = cache.payloads("h1")
        assert sorted(payloads) == ["a", "b"]
        store = ResultStore(cache.store_path("h1"))
        try:
            for task_id, blob in payloads.items():
                assert blob == store.payload_bytes(task_id)
        finally:
            store.close()

    def test_payloads_refuse_unsealed_entry(self, tmp_path):
        cache = ResultCache(tmp_path, sync=False)
        _write_store(cache.store_path("h1"), ["a"])
        with pytest.raises(FileNotFoundError):
            cache.payloads("h1")

    def test_entries_ignore_partials(self, tmp_path):
        cache = ResultCache(tmp_path, sync=False)
        _write_store(cache.store_path("h1"), ["a"])
        _write_store(cache.store_path("h2"), ["a"])
        cache.seal("h2")
        assert cache.entries() == ["h2"]
