"""Unit tests for the fair-share queue (:mod:`repro.service.queue`).

Driven entirely with stub scenarios and an injected constant cost
function, so these tests exercise scheduling, dedupe, cancellation and
death/requeue semantics without ever running the engine.
"""

import pytest

from repro.common.errors import ServiceError
from repro.service.cache import ResultCache
from repro.service.jobs import JobDB
from repro.service.queue import JobCancelled, JobQueue


class StubScenario:
    """The duck-typed minimum a queue submission needs."""

    def __init__(self, content, name="stub"):
        self.content = content
        self.name = name

    def content_hash(self):
        return f"hash-{self.content}"

    def to_dict(self):
        return {"name": self.name, "content": self.content}


def make_queue(tmp_path, **kwargs):
    db = JobDB(tmp_path / "svc", sync=False)
    kwargs.setdefault("cost_fn", lambda scenario: 1.0)
    return JobQueue(db, **kwargs), db


class TestDedupe:
    def test_distinct_scenarios_do_not_coalesce(self, tmp_path):
        queue, _db = make_queue(tmp_path)
        a = queue.submit(StubScenario("a"), "alice")
        b = queue.submit(StubScenario("b"), "alice")
        assert not a.deduplicated and not b.deduplicated
        assert queue.pending() == 2

    def test_identical_hash_attaches_to_live_run(self, tmp_path):
        queue, _db = make_queue(tmp_path)
        primary = queue.submit(StubScenario("a"), "alice")
        follower = queue.submit(StubScenario("a"), "bob")
        assert follower.deduplicated
        assert follower.attached_to == primary.job_id
        assert queue.pending() == 1  # one run serves both

    def test_follower_attaches_while_running(self, tmp_path):
        queue, _db = make_queue(tmp_path)
        primary = queue.submit(StubScenario("a"), "alice")
        assert queue.claim().job_id == primary.job_id
        follower = queue.submit(StubScenario("a"), "bob")
        assert follower.attached_to == primary.job_id
        assert queue.pending() == 0

    def test_complete_settles_followers(self, tmp_path):
        queue, db = make_queue(tmp_path)
        primary = queue.submit(StubScenario("a"), "alice")
        follower = queue.submit(StubScenario("a"), "bob")
        queue.claim()
        queue.progress(primary.job_id, 7, 7)
        queue.complete(primary.job_id)
        assert db.get(primary.job_id).state == "done"
        follower_record = db.get(follower.job_id)
        assert follower_record.state == "done"
        assert follower_record.progress_done == 7  # progress mirrored

    def test_sealed_cache_hit_never_queues(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", sync=False)
        cache.store_path("hash-a").mkdir(parents=True)
        cache.seal("hash-a", extra={"tasks": 7})
        queue, _db = make_queue(tmp_path, cache=cache)
        record = queue.submit(StubScenario("a"), "alice")
        assert record.state == "done"
        assert record.deduplicated
        assert record.progress_done == record.progress_total == 7
        assert queue.pending() == 0


class TestFairShare:
    def test_equal_weights_round_robin(self, tmp_path):
        queue, _db = make_queue(tmp_path)
        for index in range(3):
            queue.submit(StubScenario(f"a{index}"), "alice")
            queue.submit(StubScenario(f"b{index}"), "bob")
        order = [queue.claim().submitter for _ in range(6)]
        assert order == ["alice", "bob"] * 3

    def test_weighted_share(self, tmp_path):
        queue, _db = make_queue(tmp_path, weights={"alice": 3.0, "bob": 1.0})
        for index in range(8):
            queue.submit(StubScenario(f"a{index}"), "alice")
            queue.submit(StubScenario(f"b{index}"), "bob")
        first_eight = [queue.claim().submitter for _ in range(8)]
        # Weight 3 vs 1: alice gets ~3 of every 4 early claims.
        assert first_eight.count("alice") == 6
        assert first_eight.count("bob") == 2

    def test_expensive_job_defers_its_submitter(self, tmp_path):
        queue, _db = make_queue(tmp_path)
        queue.submit(StubScenario("big"), "alice", cost=10.0)
        for index in range(3):
            queue.submit(StubScenario(f"b{index}"), "bob", cost=1.0)
        assert queue.claim().submitter == "alice"  # clocks tied: name break
        # Alice's clock advanced by 10; bob's cheap jobs all go first now.
        assert [queue.claim().submitter for _ in range(3)] == ["bob"] * 3

    def test_idle_tenant_earns_no_credit(self, tmp_path):
        queue, _db = make_queue(tmp_path)
        for index in range(4):
            queue.submit(StubScenario(f"a{index}"), "alice")
        for _ in range(4):
            queue.claim()
        # Bob arrives late: he starts at the current clock, not at zero,
        # so he cannot monopolize the workers to "catch up".
        queue.submit(StubScenario("b0"), "bob")
        queue.submit(StubScenario("a4"), "alice")
        claimed = {queue.claim().submitter, queue.claim().submitter}
        assert claimed == {"alice", "bob"}

    def test_claim_empty_queue(self, tmp_path):
        queue, _db = make_queue(tmp_path)
        assert queue.claim() is None


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        queue, db = make_queue(tmp_path)
        record = queue.submit(StubScenario("a"), "alice")
        assert queue.cancel(record.job_id)
        assert db.get(record.job_id).state == "cancelled"
        assert queue.claim() is None

    def test_cancel_terminal_job_is_refused(self, tmp_path):
        queue, db = make_queue(tmp_path)
        record = queue.submit(StubScenario("a"), "alice")
        queue.claim()
        queue.complete(record.job_id)
        assert not queue.cancel(record.job_id)
        assert db.get(record.job_id).state == "done"

    def test_cancel_follower_detaches_without_stopping_run(self, tmp_path):
        queue, db = make_queue(tmp_path)
        primary = queue.submit(StubScenario("a"), "alice")
        follower = queue.submit(StubScenario("a"), "bob")
        queue.claim()
        assert queue.cancel(follower.job_id)
        queue.progress(primary.job_id, 1, 7)  # must NOT raise JobCancelled
        queue.complete(primary.job_id)
        assert db.get(primary.job_id).state == "done"
        assert db.get(follower.job_id).state == "cancelled"

    def test_cancel_running_primary_with_follower_keeps_run(self, tmp_path):
        queue, db = make_queue(tmp_path)
        primary = queue.submit(StubScenario("a"), "alice")
        follower = queue.submit(StubScenario("a"), "bob")
        queue.claim()
        assert queue.cancel(primary.job_id)
        assert db.get(primary.job_id).state == "cancelled"
        queue.progress(primary.job_id, 3, 7)  # follower still wants it
        queue.complete(primary.job_id)
        follower_record = db.get(follower.job_id)
        assert follower_record.state == "done"
        assert follower_record.progress_done == 3

    def test_cancel_last_party_aborts_via_tap(self, tmp_path):
        queue, db = make_queue(tmp_path)
        record = queue.submit(StubScenario("a"), "alice")
        queue.claim()
        assert queue.cancel(record.job_id)
        with pytest.raises(JobCancelled):
            queue.progress(record.job_id, 1, 7)
        queue.aborted(record.job_id)
        assert db.get(record.job_id).state == "cancelled"

    def test_cancel_queued_primary_promotes_follower(self, tmp_path):
        queue, db = make_queue(tmp_path)
        primary = queue.submit(StubScenario("a"), "alice")
        follower = queue.submit(StubScenario("a"), "bob")
        assert queue.cancel(primary.job_id)
        promoted = queue.claim()
        assert promoted.job_id == follower.job_id
        assert promoted.attached_to is None  # owns the run now
        queue.complete(promoted.job_id)
        assert db.get(follower.job_id).state == "done"

    def test_submit_after_abort_request_revives_run(self, tmp_path):
        queue, db = make_queue(tmp_path)
        record = queue.submit(StubScenario("a"), "alice")
        queue.claim()
        queue.cancel(record.job_id)
        newcomer = queue.submit(StubScenario("a"), "bob")
        # The pending abort is withdrawn: the tap keeps feeding progress.
        queue.progress(record.job_id, 2, 7)
        queue.complete(record.job_id)
        assert db.get(newcomer.job_id).state == "done"


class TestDeathAndRequeue:
    def test_death_requeues_at_front(self, tmp_path):
        queue, db = make_queue(tmp_path)
        first = queue.submit(StubScenario("a"), "alice")
        queue.submit(StubScenario("b"), "alice")
        claimed = queue.claim()
        assert claimed.job_id == first.job_id
        requeued = queue.death(first.job_id, "worker died")
        assert requeued.state == "queued"
        assert requeued.attempts == 1
        assert requeued.error == "worker died"
        # Front of the FIFO: the dead job is claimed again before b.
        assert queue.claim().job_id == first.job_id

    def test_death_fails_at_attempt_limit(self, tmp_path):
        queue, db = make_queue(tmp_path, max_attempts=2)
        record = queue.submit(StubScenario("a"), "alice")
        follower = queue.submit(StubScenario("a"), "bob")
        for _ in range(2):
            assert queue.claim().job_id == record.job_id
            outcome = queue.death(record.job_id, "boom")
        assert outcome.state == "failed"
        assert db.get(follower.job_id).state == "failed"
        assert db.get(follower.job_id).error == "boom"
        assert queue.claim() is None

    def test_death_refunds_fairness_charge(self, tmp_path):
        queue, _db = make_queue(tmp_path)
        doomed = queue.submit(StubScenario("a"), "alice", cost=100.0)
        queue.submit(StubScenario("b"), "bob", cost=1.0)
        queue.submit(StubScenario("a2"), "alice", cost=1.0)
        assert queue.claim().job_id == doomed.job_id
        queue.death(doomed.job_id, "died")
        # The 100-cost charge was refunded: alice is not pushed behind
        # bob for work the service never delivered.
        assert queue.claim().submitter == "alice"

    def test_fail_is_terminal_for_run_and_followers(self, tmp_path):
        queue, db = make_queue(tmp_path)
        primary = queue.submit(StubScenario("a"), "alice")
        follower = queue.submit(StubScenario("a"), "bob")
        queue.claim()
        queue.fail(primary.job_id, "bad scenario")
        assert db.get(primary.job_id).state == "failed"
        assert db.get(follower.job_id).state == "failed"


class TestRebuild:
    def test_restart_preserves_queue_and_dedupe(self, tmp_path):
        queue, db = make_queue(tmp_path)
        primary = queue.submit(StubScenario("a"), "alice")
        follower = queue.submit(StubScenario("a"), "bob")
        distinct = queue.submit(StubScenario("b"), "carol")

        # New queue over a reopened db: the scheduler state is re-derived.
        db2 = JobDB(tmp_path / "svc", sync=False)
        queue2 = JobQueue(db2, cost_fn=lambda s: 1.0)
        assert queue2.pending() == 2  # one run for hash-a, one for hash-b
        claimed = {queue2.claim().job_id, queue2.claim().job_id}
        assert primary.job_id in claimed or follower.job_id in claimed
        assert distinct.job_id in claimed

    def test_restart_requeues_running_job(self, tmp_path):
        queue, db = make_queue(tmp_path)
        record = queue.submit(StubScenario("a"), "alice")
        queue.claim()
        assert db.get(record.job_id).state == "running"

        db2 = JobDB(tmp_path / "svc", sync=False)  # recovery requeues it
        assert db2.recovered == [record.job_id]
        queue2 = JobQueue(db2, cost_fn=lambda s: 1.0)
        reclaimed = queue2.claim()
        assert reclaimed.job_id == record.job_id
        assert reclaimed.attempts == 2

    def test_restart_settles_queued_job_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", sync=False)
        queue, db = make_queue(tmp_path, cache=cache)
        record = queue.submit(StubScenario("a"), "alice")
        # The result landed (say, another server sealed it) before restart.
        cache.store_path("hash-a").mkdir(parents=True)
        cache.seal("hash-a", extra={"tasks": 7})
        db2 = JobDB(tmp_path / "svc", sync=False)
        JobQueue(db2, cache=cache, cost_fn=lambda s: 1.0)
        assert db2.get(record.job_id).state == "done"
        assert db2.get(record.job_id).deduplicated


class TestValidation:
    def test_max_attempts_validated(self, tmp_path):
        db = JobDB(tmp_path / "svc", sync=False)
        with pytest.raises(ServiceError):
            JobQueue(db, max_attempts=0)
