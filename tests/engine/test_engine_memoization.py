"""Trace memoization and task chunking must not change engine results.

The memo is a pure optimization: trace generation is deterministic in the
memo key, so warm-cache runs must merge to byte-identical
:class:`ComboResult` s (the same fingerprint discipline as the determinism
suite).  The key embeds the program tuple, so custom mixes that share a
``mix_id`` can never alias each other's traces.
"""

import json

import numpy as np
import pytest

from repro.common.config import tiny_config
from repro.engine import ParallelRunner
from repro.engine.execution import (
    _TRACE_MEMO_MAX,
    _mix_traces,
    _trace_memo,
    execute_task_chunk,
)
from repro.engine.tasks import SimTask, expand_mix_tasks
from repro.experiments.runner import RunPlan, run_combo
from repro.workloads.mixes import WorkloadMix, build_mix_traces, get_mix


def small_plan() -> RunPlan:
    return RunPlan(
        n_accesses=1_500,
        target_instructions=25_000,
        warmup_instructions=15_000,
        seed=5,
        cc_probs=(0.0, 1.0),
    )


def fingerprint(combo) -> str:
    return json.dumps(
        {
            "mix_id": combo.mix_id,
            "cc_best_prob": combo.cc_best_prob,
            "metrics": combo.metrics,
            "results": {name: res.to_dict() for name, res in combo.results.items()},
        },
        sort_keys=True,
    )


@pytest.fixture(autouse=True)
def clean_memo():
    _trace_memo.clear()
    yield
    _trace_memo.clear()


class TestMemoCorrectness:
    def test_memo_returns_identical_traces(self):
        mix = get_mix("c3_0")
        cold = _mix_traces(mix, 16, 500, seed=3)
        warm = _mix_traces(mix, 16, 500, seed=3)
        assert warm is cold  # second call is a cache hit
        rebuilt = build_mix_traces(mix, 16, 500, 3)
        for a, b in zip(cold, rebuilt):
            assert np.array_equal(a.addrs, b.addrs)
            assert np.array_equal(a.gaps, b.gaps)
            assert np.array_equal(a.writes, b.writes)

    def test_distinct_custom_mixes_never_alias(self):
        """Same mix_id, different programs -> different memo entries."""
        mix_a = WorkloadMix("custom", "custom", ("gzip", "swim", "mesa", "applu"))
        mix_b = WorkloadMix("custom", "custom", ("ammp", "parser", "vortex", "mcf"))
        traces_a = _mix_traces(mix_a, 16, 400, seed=1)
        traces_b = _mix_traces(mix_b, 16, 400, seed=1)
        assert len(_trace_memo) == 2
        assert not np.array_equal(traces_a[0].addrs, traces_b[0].addrs)

    def test_memo_is_bounded(self):
        for i, mix in enumerate(["c1_0", "c1_1", "c1_2", "c2_0", "c2_1", "c2_2"]):
            _mix_traces(get_mix(mix), 16, 200, seed=i)
        assert len(_trace_memo) <= _TRACE_MEMO_MAX


class TestMemoizedEngineBitIdentical:
    """Warm-memo and chunked-pool runs reproduce the serial ComboResults."""

    def test_warm_memo_matches_serial(self):
        config, plan = tiny_config(seed=7), small_plan()
        mix = get_mix("c4_0")
        serial = fingerprint(run_combo(mix, config, plan))
        runner = ParallelRunner(config, plan, jobs=0)
        [cold] = runner.run([mix])
        assert _trace_memo, "in-process run should have populated the memo"
        [warm] = ParallelRunner(config, plan, jobs=0).run([mix])
        assert fingerprint(cold) == serial
        assert fingerprint(warm) == serial

    def test_multi_mix_chunked_pool_matches_serial(self):
        """Two mixes, two workers: per-mix chunks merge identically."""
        config, plan = tiny_config(seed=7), small_plan()
        mixes = [get_mix("c5_0"), get_mix("c5_1")]
        serial = [fingerprint(run_combo(m, config, plan)) for m in mixes]
        runner = ParallelRunner(config, plan, jobs=2)
        combos = runner.run(mixes)
        assert [fingerprint(c) for c in combos] == serial

    def test_chunk_failure_preserves_completed_results(self):
        """A mid-chunk failure returns the siblings finished before it."""
        config, plan = tiny_config(seed=7), small_plan()
        mix = get_mix("c1_0")

        def task(scheme):
            return SimTask(mix.mix_id, mix.mix_class, mix.programs, scheme)

        results, error, stats = execute_task_chunk(
            config, plan, [task("l2p"), task("not_a_scheme"), task("l2s")]
        )
        assert [r.scheme for r in results] == ["l2p"]
        assert error is not None
        assert stats["memo_hits"] + stats["cache_hits"] + stats["generated"] >= 1

    def test_single_mix_pool_fans_out_in_subchunks(self):
        """Fewer mixes than workers: each mix splits into contiguous
        sub-chunks of <= ceil(len/jobs) tasks — enough chunks to fill the
        workers *without* giving up the within-chunk trace-memo locality
        single-task chunks used to discard."""
        import math

        config, plan = tiny_config(seed=7), small_plan()
        mix = get_mix("c4_1")
        runner = ParallelRunner(config, plan, jobs=3)
        tasks = expand_mix_tasks(mix, runner.schemes, plan.cc_probs)
        chunks = runner._chunk(tasks)
        cap = math.ceil(len(tasks) / runner.jobs)
        assert len(chunks) >= runner.jobs
        assert all(1 <= len(c) <= cap for c in chunks)
        assert any(len(c) > 1 for c in chunks)  # memo locality survives
        # Sub-chunks are contiguous slices in task order.
        assert [t.task_id for c in chunks for t in c] == [t.task_id for t in tasks]
        serial = fingerprint(run_combo(mix, config, plan))
        [combo] = runner.run([mix])
        assert fingerprint(combo) == serial

    def test_multi_mix_chunks_stay_whole_when_enough(self):
        """With at least as many mixes as workers, chunks stay one-per-mix."""
        config, plan = tiny_config(seed=7), small_plan()
        mixes = [get_mix("c5_0"), get_mix("c5_1")]
        runner = ParallelRunner(config, plan, jobs=2)
        tasks = [
            t for m in mixes for t in expand_mix_tasks(m, runner.schemes, plan.cc_probs)
        ]
        chunks = runner._chunk(tasks)
        assert len(chunks) == 2
        assert {c[0].mix_id for c in chunks} == {"c5_0", "c5_1"}
        assert all(len({t.mix_id for t in c}) == 1 for c in chunks)
