"""Store crash-recovery acceptance: bit flips, kill -9, resume to identity.

Two suites pin the durability story end to end:

* **Scrub/repair acceptance** — flip one bit in a finished sweep's store,
  then walk the operator path: ``verify`` detects exactly that record,
  ``repair`` quarantines exactly that record, and ``--resume``
  re-simulates exactly that task to a merged result bit-identical to the
  uninterrupted serial run.

* **Kill matrix** — a child process runs the same sweep but SIGKILLs
  itself mid-append at a seed-chosen record and byte offset (the torn-tail
  shape a real ``kill -9`` leaves).  The parent resumes the store and must
  get the bit-identical merge, for every seed in ``$REPRO_CRASH_SEEDS``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.common.config import tiny_config
from repro.engine import ParallelRunner
from repro.engine.store import ResultStore
from repro.experiments.runner import RunPlan, run_combo
from repro.workloads.mixes import get_mix

MIX_ID = "c5_0"


def small_plan() -> RunPlan:
    return RunPlan(
        n_accesses=1_500,
        target_instructions=25_000,
        warmup_instructions=15_000,
        seed=5,
        cc_probs=(0.0, 1.0),
    )


def fingerprint(combo) -> str:
    return json.dumps(
        {
            "mix_id": combo.mix_id,
            "mix_class": combo.mix_class,
            "cc_best_prob": combo.cc_best_prob,
            "metrics": combo.metrics,
            "results": {name: res.to_dict() for name, res in combo.results.items()},
        },
        sort_keys=True,
    )


@pytest.fixture(scope="module")
def serial_fingerprint() -> str:
    return fingerprint(run_combo(get_mix(MIX_ID), tiny_config(seed=7), small_plan()))


def _run_sweep(store: str, *, resume: bool = False) -> ParallelRunner:
    runner = ParallelRunner(
        tiny_config(seed=7), small_plan(), jobs=0, store=store, resume=resume
    )
    runner.combos = runner.run([get_mix(MIX_ID)])
    return runner


class TestScrubRepairResume:
    def test_flip_verify_repair_resume_bit_identical(
        self, tmp_path, serial_fingerprint
    ):
        store_dir = tmp_path / "store"
        _run_sweep(str(store_dir))

        # Corrupt exactly one record: one bit inside one task's payload.
        target = "c5_0__dsr"
        flipped = 0
        for segment in sorted(store_dir.glob("shards/*/seg-*.seg")):
            data = bytearray(segment.read_bytes())
            offset = data.find(f'"task_id":"{target}"'.encode())
            if offset == -1:
                continue
            data[offset + len('"task_id":"')] ^= 0x01
            segment.write_bytes(bytes(data))
            flipped += 1
        assert flipped == 1

        with ResultStore(store_dir) as store:
            report = store.verify()
            assert not report.ok
            assert len(report.problems) == 1
            assert report.problems[0].kind == "corrupt"

            repair = store.repair()
            assert len(repair.quarantined) == 1
            assert store.verify().ok
            # Exactly the flipped task left the resume index.
            done = store.completed_ids()
        assert target not in done
        sidecars = list((store_dir / "quarantine").glob("*.json"))
        assert len(sidecars) == 1

        resumed = _run_sweep(str(store_dir), resume=True)
        assert resumed.tasks_run == 1  # only the quarantined task re-simulates
        assert resumed.tasks_resumed == resumed.tasks_total - 1
        [combo] = resumed.combos
        assert fingerprint(combo) == serial_fingerprint


def _crash_seeds() -> list:
    """Seeds for the kill matrix; override with REPRO_CRASH_SEEDS=1,2,3."""
    raw = os.environ.get("REPRO_CRASH_SEEDS", "3,11")
    return [int(s) for s in raw.split(",") if s.strip()]


_CHILD_SCRIPT = """
import os, random, signal, sys

seed = int(sys.argv[1])
store_dir = sys.argv[2]
rng = random.Random(seed)

from repro.engine.store import encode_record
from repro.engine.store.sharded import ResultStore

# SIGKILL this process mid-append at the k-th save, after a seed-chosen
# number of bytes of the record have hit the segment — the exact torn
# shape a crashed coordinator leaves behind.
kill_at = rng.randrange(1, 7)
state = {"saves": 0}
real_append = ResultStore._append

def dying_append(self, task_id, body, tombstone):
    state["saves"] += 1
    if state["saves"] == kill_at:
        record = encode_record(body)
        cut = rng.randrange(1, len(record))
        shard = self._shard_of(task_id)
        with self._lock:
            _path, handle, _offset = self._writable_segment(shard)
            handle.write(record[:cut])
            handle.flush()
            os.fsync(handle.fileno())
        os.kill(os.getpid(), signal.SIGKILL)
    return real_append(self, task_id, body, tombstone)

ResultStore._append = dying_append

from repro.common.config import tiny_config
from repro.engine import ParallelRunner
from repro.experiments.runner import RunPlan
from repro.workloads.mixes import get_mix

plan = RunPlan(n_accesses=1_500, target_instructions=25_000,
               warmup_instructions=15_000, seed=5, cc_probs=(0.0, 1.0))
ParallelRunner(tiny_config(seed=7), plan, jobs=0, store=store_dir).run(
    [get_mix("c5_0")]
)
raise SystemExit("sweep finished without crashing — kill point never hit")
"""


class TestKillMatrix:
    @pytest.mark.parametrize("seed", _crash_seeds())
    def test_sigkill_mid_append_resumes_bit_identical(
        self, seed, tmp_path, serial_fingerprint
    ):
        store_dir = tmp_path / "store"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD_SCRIPT, str(seed), str(store_dir)],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == -signal.SIGKILL, (
            f"child was supposed to die by SIGKILL, got rc={proc.returncode}: "
            f"{proc.stderr}"
        )

        # The store must come back with only the unacknowledged record
        # missing: open truncates the torn tail, verify is then clean.
        with ResultStore(store_dir) as store:
            done = store.completed_ids()
            assert store.verify().ok

        resumed = _run_sweep(str(store_dir), resume=True)
        assert resumed.tasks_resumed == len(done)
        assert resumed.tasks_run == resumed.tasks_total - len(done)
        [combo] = resumed.combos
        assert fingerprint(combo) == serial_fingerprint
        with ResultStore(store_dir) as store:
            assert store.verify().ok
