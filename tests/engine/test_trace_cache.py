"""The shared on-disk trace cache: correctness, atomicity, self-healing."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.workloads.mixes import build_mix_traces, get_mix
from repro.workloads.spec2000 import make_benchmark_trace
from repro.workloads.trace_cache import (
    TraceCache,
    benchmark_key,
    cached_benchmark_trace,
    cached_mix_traces,
    mix_key,
    resolve_cache_root,
)

MIX = get_mix("c3_0")


def assert_traces_equal(a, b):
    assert len(a) == len(b)
    for ta, tb in zip(a, b):
        assert ta.name == tb.name
        assert np.array_equal(ta.gaps, tb.gaps)
        assert np.array_equal(ta.addrs, tb.addrs)
        assert np.array_equal(ta.writes, tb.writes)


class TestRoundTrip:
    def test_mix_store_then_load_identical(self, tmp_path):
        cache = TraceCache(tmp_path)
        generated, src1 = cached_mix_traces(cache, MIX, 16, 400, seed=3)
        assert src1 == "generated"
        loaded, src2 = cached_mix_traces(cache, MIX, 16, 400, seed=3)
        assert src2 == "cache"
        assert_traces_equal(loaded, generated)
        assert_traces_equal(loaded, build_mix_traces(MIX, 16, 400, 3))
        assert cache.hits == 1 and cache.stores == 1 and cache.rejected == 0

    def test_benchmark_store_then_load_identical(self, tmp_path):
        cache = TraceCache(tmp_path)
        t1, src1 = cached_benchmark_trace(cache, "ammp", 16, 600, seed=2)
        t2, src2 = cached_benchmark_trace(cache, "ammp", 16, 600, seed=2)
        assert (src1, src2) == ("generated", "cache")
        assert_traces_equal([t1], [t2])
        assert_traces_equal([t2], [make_benchmark_trace("ammp", 16, 600, 2)])

    def test_no_cache_is_plain_generation(self):
        traces, src = cached_mix_traces(None, MIX, 16, 300, seed=1)
        assert src == "generated"
        assert_traces_equal(traces, build_mix_traces(MIX, 16, 300, 1))


class TestKeying:
    def test_distinct_keys_distinct_files(self, tmp_path):
        cache = TraceCache(tmp_path)
        keys = {
            cache.path_for(mix_key(MIX, 16, 400, 3)),
            cache.path_for(mix_key(MIX, 16, 400, 4)),      # seed
            cache.path_for(mix_key(MIX, 32, 400, 3)),      # num_sets
            cache.path_for(mix_key(MIX, 16, 500, 3)),      # n_accesses
            cache.path_for(benchmark_key("ammp", 16, 400, 3)),
        }
        assert len(keys) == 5

    def test_custom_mixes_sharing_id_never_alias(self, tmp_path):
        """Two custom mixes both named "custom" must hit different entries —
        the program tuple is part of the key."""
        from repro.workloads.mixes import WorkloadMix

        mix_a = WorkloadMix("custom", "custom", ("gzip", "swim", "mesa", "applu"))
        mix_b = WorkloadMix("custom", "custom", ("ammp", "parser", "vortex", "mcf"))
        cache = TraceCache(tmp_path)
        traces_a, _ = cached_mix_traces(cache, mix_a, 16, 300, seed=1)
        traces_b, src_b = cached_mix_traces(cache, mix_b, 16, 300, seed=1)
        assert src_b == "generated"  # no false hit
        assert not np.array_equal(traces_a[0].addrs, traces_b[0].addrs)

    def test_serial_run_combo_honors_env_cache(self, tmp_path, monkeypatch):
        """$REPRO_TRACE_CACHE reaches the serial path too: run_combo without
        any engine flags populates and then reuses the shared cache."""
        import repro.workloads.trace_cache as tc_module
        from repro.common.config import tiny_config
        from repro.engine.execution import _trace_memo
        from repro.experiments.runner import RunPlan, run_combo

        root = tmp_path / "env-cache"
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(root))
        plan = RunPlan(n_accesses=800, target_instructions=8_000,
                       warmup_instructions=0, seed=3, cc_probs=(0.0,))
        _trace_memo.clear()
        first = run_combo(MIX, tiny_config(seed=7), plan, schemes=("l2p",))
        assert len(list(root.iterdir())) == 1  # populated without engine flags

        # Second run must be served from the cache: poison the generator so
        # any regeneration attempt fails loudly.
        def boom(*args, **kwargs):
            raise AssertionError("regenerated instead of using the shared cache")

        monkeypatch.setattr(tc_module, "build_mix_traces", boom)
        _trace_memo.clear()
        second = run_combo(MIX, tiny_config(seed=7), plan, schemes=("l2p",))
        assert second.results["l2p"].to_dict() == first.results["l2p"].to_dict()

    def test_env_default_resolution(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        assert resolve_cache_root(None) is None
        assert resolve_cache_root(tmp_path) == str(tmp_path)
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "env"))
        assert resolve_cache_root(None) == str(tmp_path / "env")
        assert resolve_cache_root(str(tmp_path / "cli")) == str(tmp_path / "cli")


class TestCorruption:
    def test_truncated_entry_regenerates(self, tmp_path):
        cache = TraceCache(tmp_path)
        key = mix_key(MIX, 16, 400, 3)
        cache.store(key, build_mix_traces(MIX, 16, 400, 3))
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert cache.load(key) is None
        assert cache.rejected == 1
        # The provisioning wrapper heals the entry in place.
        traces, src = cached_mix_traces(cache, MIX, 16, 400, seed=3)
        assert src == "generated"
        assert_traces_equal(traces, build_mix_traces(MIX, 16, 400, 3))
        loaded, src2 = cached_mix_traces(cache, MIX, 16, 400, seed=3)
        assert src2 == "cache"

    def test_digest_mismatch_regenerates(self, tmp_path):
        """An entry whose arrays were tampered with (valid npz, stale digest)
        is rejected and rebuilt rather than served."""
        import io
        import json as jsonlib

        cache = TraceCache(tmp_path)
        key = mix_key(MIX, 16, 400, 3)
        traces = build_mix_traces(MIX, 16, 400, 3)
        cache.store(key, traces)
        path = cache.path_for(key)
        with np.load(path, allow_pickle=False) as payload:
            arrays = {name: payload[name] for name in payload.files}
            meta = jsonlib.loads(str(payload["meta"]))
        arrays["addrs_0"] = arrays["addrs_0"].copy()
        arrays["addrs_0"][0] += 1  # silent bit-flip, digest left stale
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        path.write_bytes(buf.getvalue())
        assert meta["digest"]  # the stored digest no longer matches
        assert cache.load(key) is None
        assert cache.rejected == 1
        healed, src = cached_mix_traces(cache, MIX, 16, 400, seed=3)
        assert src == "generated"
        assert_traces_equal(healed, traces)

    def test_wrong_key_echo_rejected(self, tmp_path):
        """An entry moved/renamed onto another key's path is not served."""
        cache = TraceCache(tmp_path)
        key_a = mix_key(MIX, 16, 400, 3)
        key_b = mix_key(MIX, 16, 400, 4)
        cache.store(key_a, build_mix_traces(MIX, 16, 400, 3))
        cache.path_for(key_a).rename(cache.path_for(key_b))
        assert cache.load(key_b) is None
        assert cache.rejected == 1


class TestConcurrency:
    def test_concurrent_writers_one_valid_entry(self, tmp_path):
        """Eight threads racing on one cold key: every caller gets correct
        traces and the surviving file is a valid, digest-clean entry."""
        root = tmp_path / "cache"

        def worker(_):
            cache = TraceCache(root)
            return cached_mix_traces(cache, MIX, 16, 400, seed=3)[0]

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(worker, range(8)))
        reference = build_mix_traces(MIX, 16, 400, 3)
        for traces in results:
            assert_traces_equal(traces, reference)
        files = list(root.iterdir())
        assert len(files) == 1  # no leftover temp files
        final = TraceCache(root)
        assert final.load(mix_key(MIX, 16, 400, 3)) is not None
        assert final.rejected == 0

    def test_concurrent_distinct_keys(self, tmp_path):
        root = tmp_path / "cache"
        seeds = list(range(6))

        def worker(seed):
            cache = TraceCache(root)
            return cached_mix_traces(cache, MIX, 16, 300, seed=seed)[0]

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(worker, seeds))
        for seed, traces in zip(seeds, results):
            assert_traces_equal(traces, build_mix_traces(MIX, 16, 300, seed))
        assert len(list(root.iterdir())) == len(seeds)
