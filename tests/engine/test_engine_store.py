"""Unit tests for the engine's task model and sharded segment result store."""

import json

import pytest

from repro.common.config import tiny_config
from repro.common.errors import EngineError
from repro.engine import ParallelRunner, ResultStore, SimTask, expand_mix_tasks
from repro.engine.store import RECORD_OVERHEAD, crc32c, migrate_store
from repro.experiments.runner import RunPlan
from repro.workloads.mixes import get_mix


def _segments(store_root):
    """Every segment file under a store root, sorted for determinism."""
    return sorted(store_root.glob("shards/*/seg-*.seg"))


class TestSimTask:
    def test_task_id_plain_scheme(self):
        task = SimTask("c1_0", "C1", ("ammp",) * 4, "l2p")
        assert task.task_id == "c1_0__l2p"

    def test_task_id_cc_probability_point(self):
        task = SimTask("c1_0", "C1", ("ammp",) * 4, "cc", cc_prob=0.25)
        assert task.task_id == "c1_0__cc__p025"

    def test_mix_reconstruction(self):
        mix = get_mix("c3_1")
        task = SimTask(mix.mix_id, mix.mix_class, mix.programs, "dsr")
        assert task.mix == mix


class TestExpandMixTasks:
    def test_l2p_forced_first(self):
        tasks = expand_mix_tasks(get_mix("c1_0"), ["snug"], (0.0,))
        assert [t.scheme for t in tasks] == ["l2p", "snug"]

    def test_cc_best_expands_per_probability(self):
        tasks = expand_mix_tasks(get_mix("c1_0"), ["l2p", "cc_best"], (0.0, 0.5, 1.0))
        cc = [t for t in tasks if t.scheme == "cc"]
        assert [t.cc_prob for t in cc] == [0.0, 0.5, 1.0]
        assert len(tasks) == 4

    def test_full_scheme_list(self):
        tasks = expand_mix_tasks(
            get_mix("c1_0"), ["l2p", "l2s", "cc_best", "dsr", "snug"], (0.0, 0.5, 1.0)
        )
        assert len(tasks) == 7
        assert len({t.task_id for t in tasks}) == 7  # ids unique


class TestResultStore:
    def test_crc32c_known_vector(self):
        """Pin the checksum to real CRC32C (Castagnoli), not zlib's CRC32 —
        a wrong-but-self-consistent polynomial would verify its own
        corruption."""
        assert crc32c(b"123456789") == 0xE3069283

    def test_save_load_round_trip(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.initialize({"k": 1})
            payload = {"result": {"ipc": [0.1, 0.2]}, "task": {"scheme": "l2p"}}
            store.save("combo__l2p", payload)
            assert store.load("combo__l2p") == payload
            assert store.completed_ids() == {"combo__l2p"}
        # Durable: a fresh instance replays the segments to the same state.
        with ResultStore(tmp_path / "s") as reopened:
            assert reopened.load("combo__l2p") == payload

    def test_reopen_same_manifest_ok(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize({"k": 1})
        ResultStore(tmp_path / "s").initialize({"k": 1})  # no error

    def test_reopen_different_manifest_rejected(self, tmp_path):
        ResultStore(tmp_path / "s").initialize({"k": 1})
        with pytest.raises(EngineError):
            ResultStore(tmp_path / "s").initialize({"k": 2})

    def test_missing_result_raises(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize({})
        with pytest.raises(EngineError):
            store.load("nope")

    def test_resave_supersedes_last_wins(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.initialize({})
            store.save("t1", {"v": 1})
            store.save("t1", {"v": 2})
            assert store.load("t1") == {"v": 2}
        with ResultStore(tmp_path / "s") as reopened:
            assert reopened.load("t1") == {"v": 2}

    def test_discard_tombstones_without_rewriting_history(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.initialize({})
            store.save("t1", {"v": 1})
            store.save("t2", {"v": 2})
            store.discard("t1")
            assert store.completed_ids() == {"t2"}
        with ResultStore(tmp_path / "s") as reopened:
            assert reopened.completed_ids() == {"t2"}
            with pytest.raises(EngineError, match="no stored result"):
                reopened.load("t1")

    def test_records_spread_across_shards(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.initialize({})
            for index in range(64):
                store.save(f"c{index}__l2p", {"v": index})
        shard_dirs = {seg.parent.name for seg in _segments(tmp_path / "s")}
        assert len(shard_dirs) > 1  # sha256 partitioning actually spreads

    def test_bit_flip_detected_and_excluded(self, tmp_path):
        """A single flipped payload bit fails the CRC: verify() names the
        record, completed_ids() drops the task (so --resume recomputes it),
        and load() points at the repair + --resume remedy."""
        with ResultStore(tmp_path / "s") as store:
            store.initialize({})
            store.save("c4_0__l2p", {"task": {"scheme": "l2p"}, "result": {}})
        [segment] = _segments(tmp_path / "s")
        data = bytearray(segment.read_bytes())
        # Flip one bit inside a payload string: the record no longer
        # checksums, but the body still parses so the report can name the
        # task.  (RECORD_OVERHEAD bytes of framing precede the body.)
        offset = data.find(b'"scheme":"l2p"')
        assert offset >= RECORD_OVERHEAD - 1
        data[offset + len(b'"scheme":"l2') ] ^= 0x01
        segment.write_bytes(bytes(data))

        with ResultStore(tmp_path / "s") as store:
            report = store.verify()
            assert not report.ok
            assert len(report.problems) == 1
            assert report.problems[0].kind == "corrupt"
            assert report.problems[0].task_id == "c4_0__l2p"
            assert "repro store repair" in report.problems[0].message()
            # The corrupt record never reaches the resume index, so the
            # sweep re-simulates the task instead of trusting bad bytes.
            assert store.completed_ids() == set()
            with pytest.raises(EngineError, match="no stored result"):
                store.load("c4_0__l2p")

    def test_corruption_after_open_caught_on_load(self, tmp_path):
        """The checksum is re-verified on every read: damage landing while
        the store is open (so the index still lists the record) surfaces as
        an actionable repair + --resume message, never as bad payload."""
        with ResultStore(tmp_path / "s") as store:
            store.initialize({})
            store.save("c4_0__l2p", {"task": {"scheme": "l2p"}, "result": {}})
            [segment] = _segments(tmp_path / "s")
            data = bytearray(segment.read_bytes())
            data[data.find(b'"scheme"') + 2] ^= 0x01
            segment.write_bytes(bytes(data))
            with pytest.raises(EngineError) as excinfo:
                store.load("c4_0__l2p")
        message = str(excinfo.value)
        assert "repro store repair" in message and "--resume" in message

    def test_repair_quarantines_exactly_the_corrupt_record(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.initialize({})
            store.save("good", {"v": 1})
            store.save("bad", {"v": 2})
        flipped = None
        for segment in _segments(tmp_path / "s"):
            data = bytearray(segment.read_bytes())
            offset = data.find(b'"task_id":"bad"')
            if offset != -1:
                data[offset + len(b'"task_id":"')] ^= 0x01
                segment.write_bytes(bytes(data))
                flipped = segment
        assert flipped is not None

        with ResultStore(tmp_path / "s") as store:
            report = store.repair()
            assert report.changed
            assert len(report.quarantined) == 1
            assert store.verify().ok  # damage is out of the replay path
            assert store.load("good") == {"v": 1}
        sidecars = sorted((tmp_path / "s" / "quarantine").glob("*.json"))
        assert len(sidecars) == 1
        sidecar = json.loads(sidecars[0].read_text())
        assert sidecar["kind"] == "corrupt"
        assert (tmp_path / "s" / "quarantine" / f"{sidecars[0].stem}.bin").exists()

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        """kill -9 mid-append leaves a half record with no commit marker;
        reopening loses exactly that record and keeps everything before it."""
        with ResultStore(tmp_path / "s") as store:
            store.initialize({})
            store.save("t1", {"v": 1})
        [segment] = _segments(tmp_path / "s")
        intact = segment.stat().st_size
        from repro.engine.store import MAGIC

        with open(segment, "ab") as handle:
            handle.write(MAGIC + b"\x00\x00\x01\x00")  # header torn mid-write
        with ResultStore(tmp_path / "s") as store:
            assert store.completed_ids() == {"t1"}
            assert store.verify().ok  # open already truncated the tail
        assert segment.stat().st_size == intact

    def test_compact_reclaims_superseded_records(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.initialize({})
            store.save("t1", {"v": 1})
            store.save("t1", {"v": 2})
            store.save("t2", {"v": 9})
            store.discard("t2")
            report = store.compact()
            assert report.records_dropped >= 2  # the stale t1 and all of t2
            assert report.bytes_reclaimed > 0
            assert store.load("t1") == {"v": 2}
            assert store.completed_ids() == {"t1"}
        with ResultStore(tmp_path / "s") as reopened:
            assert reopened.load("t1") == {"v": 2}

    def test_payload_bytes_identical_across_stores(self, tmp_path):
        """Two stores of the same sweep hold byte-identical record bodies —
        the store face of the bit-identical-merge contract."""
        payload = {"task": {"scheme": "l2p"}, "result": {"ipc": [0.5]}}
        for name in ("a", "b"):
            with ResultStore(tmp_path / name) as store:
                store.initialize({"k": 1})
                store.save("t1", payload)
        with ResultStore(tmp_path / "a") as sa, ResultStore(tmp_path / "b") as sb:
            assert sa.payload_bytes("t1") == sb.payload_bytes("t1")

    def test_legacy_store_refused_with_migrate_pointer(self, tmp_path):
        root = tmp_path / "legacy"
        (root / "results").mkdir(parents=True)
        (root / "manifest.json").write_text(json.dumps({"k": 1}))
        (root / "results" / "t1.json").write_text(json.dumps({"v": 1}))
        with pytest.raises(EngineError, match="repro store migrate"):
            ResultStore(root).initialize({"k": 1})

    def test_migrate_legacy_store_in_place(self, tmp_path):
        root = tmp_path / "legacy"
        (root / "results").mkdir(parents=True)
        (root / "manifest.json").write_text(json.dumps({"k": 1}))
        for index in range(3):
            (root / "results" / f"t{index}.json").write_text(
                json.dumps({"v": index})
            )
        (root / "results" / "torn.json").write_text('{"v": 0.')  # unparsable

        report = migrate_store(root)
        assert report.migrated == 3
        assert [path.name for path, _ in report.quarantined] == ["torn.json"]
        assert (root / "legacy-results.bak" / "t0.json").exists()

        with ResultStore(root) as store:
            store.initialize({"k": 1})  # manifest content still matches
            assert store.completed_ids() == {"t0", "t1", "t2"}
            assert store.load("t2") == {"v": 2}
            assert store.verify().ok

    def test_migrate_refuses_already_sharded_store(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.initialize({"k": 1})
            store.save("t1", {"v": 1})
        with pytest.raises(EngineError, match="already"):
            migrate_store(tmp_path / "s")

    def test_unreadable_manifest_raises_engine_error(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize({"k": 1})
        store.manifest_path.write_text("{torn")
        with pytest.raises(EngineError, match="manifest"):
            ResultStore(tmp_path / "s").initialize({"k": 1})

    def test_manifest_is_sorted_json(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize({"b": 2, "a": 1})
        text = (store.root / "manifest.json").read_text()
        assert json.loads(text)["a"] == 1
        assert text.index('"a"') < text.index('"b"')


class TestScenarioStamp:
    """The runner stamps the scenario identity into the store manifest."""

    def scenario(self, seed=7):
        from repro.scenario import Scenario, SystemSpec, WorkloadSpec

        return Scenario(
            name=f"stamp-{seed}",
            system=SystemSpec(scale="tiny", seed=seed),
            workload=WorkloadSpec(mixes=("c1_0",)),
            schemes=("l2p",),
            plan=RunPlan(n_accesses=1_000, target_instructions=10_000,
                         warmup_instructions=0, seed=seed, cc_probs=(0.0,)),
        )

    def runner(self, scenario, store, resume=False):
        return ParallelRunner(
            scenario.build_config(), scenario.plan, schemes=scenario.schemes,
            jobs=0, store=store, resume=resume, scenario=scenario,
        )

    def test_manifest_carries_name_and_hash(self, tmp_path):
        scenario = self.scenario()
        store = str(tmp_path / "s")
        self.runner(scenario, store).run(scenario.build_mixes())
        manifest = json.loads((tmp_path / "s" / "manifest.json").read_text())
        assert manifest["scenario"] == {
            "name": scenario.name,
            "hash": scenario.content_hash(),
        }

    def test_same_scenario_resumes(self, tmp_path):
        scenario = self.scenario()
        store = str(tmp_path / "s")
        self.runner(scenario, store).run(scenario.build_mixes())
        resumed = self.runner(scenario, store, resume=True)
        resumed.run(scenario.build_mixes())
        assert resumed.tasks_resumed == resumed.tasks_total

    def test_different_scenario_resume_refused_actionably(self, tmp_path):
        first, second = self.scenario(seed=7), self.scenario(seed=8)
        store = str(tmp_path / "s")
        self.runner(first, store).run(first.build_mixes())
        with pytest.raises(EngineError) as excinfo:
            self.runner(second, store, resume=True).run(second.build_mixes())
        message = str(excinfo.value)
        assert "stamp-7" in message and "stamp-8" in message
        assert first.content_hash()[:12] in message
        assert "fresh --store" in message

    def test_cosmetic_rename_still_resumes(self, tmp_path):
        """Only the content hash is identity: renaming a scenario (or moving
        between the flag and file spellings) must not orphan a store."""
        import dataclasses

        scenario = self.scenario()
        renamed = dataclasses.replace(scenario, name="other-name")
        assert renamed.content_hash() == scenario.content_hash()
        store = str(tmp_path / "s")
        self.runner(scenario, store).run(scenario.build_mixes())
        resumed = self.runner(renamed, store, resume=True)
        resumed.run(renamed.build_mixes())
        assert resumed.tasks_resumed == resumed.tasks_total

    def test_unstamped_store_refused_by_stamped_run(self, tmp_path):
        """A pre-scenario (API-driven) store mismatches a stamped run — the
        silent-merge hole the stamp closes."""
        scenario = self.scenario()
        store = str(tmp_path / "s")
        ParallelRunner(
            scenario.build_config(), scenario.plan, schemes=scenario.schemes,
            jobs=0, store=store,
        ).run(scenario.build_mixes())
        with pytest.raises(EngineError, match="unstamped"):
            self.runner(scenario, store, resume=True).run(scenario.build_mixes())


class TestRunnerValidation:
    def test_resume_requires_store(self):
        with pytest.raises(EngineError):
            ParallelRunner(tiny_config(), RunPlan(), resume=True)

    def test_negative_jobs_rejected(self):
        with pytest.raises(EngineError):
            ParallelRunner(tiny_config(), RunPlan(), jobs=-1)

    def test_duplicate_mix_ids_in_one_run_rejected(self):
        from repro.workloads.mixes import WorkloadMix

        plan = RunPlan(n_accesses=1_000, target_instructions=10_000,
                       warmup_instructions=0, seed=1, cc_probs=(0.0,))
        mix_a = WorkloadMix("custom", "custom", ("ammp", "applu", "apsi", "art"))
        mix_b = WorkloadMix("custom", "custom", ("vpr", "twolf", "swim", "mgrid"))
        with pytest.raises(EngineError):
            ParallelRunner(tiny_config(), plan, schemes=["l2p"], jobs=0).run([mix_a, mix_b])

    def test_resume_rejects_different_custom_mix(self, tmp_path):
        """Two custom mixes share mix_id "custom": resume must not serve one
        mix's stored results for the other's programs."""
        from repro.workloads.mixes import WorkloadMix

        store = str(tmp_path / "s")
        plan = RunPlan(n_accesses=1_000, target_instructions=10_000,
                       warmup_instructions=0, seed=1, cc_probs=(0.0,))
        mix_a = WorkloadMix("custom", "custom", ("ammp", "applu", "apsi", "art"))
        mix_b = WorkloadMix("custom", "custom", ("vpr", "twolf", "swim", "mgrid"))
        ParallelRunner(tiny_config(), plan, schemes=["l2p"], jobs=0, store=store).run([mix_a])
        with pytest.raises(EngineError):
            ParallelRunner(
                tiny_config(), plan, schemes=["l2p"], jobs=0, store=store, resume=True
            ).run([mix_b])

    def test_mismatched_plan_rejected_on_reuse(self, tmp_path):
        """A store created under one plan refuses tasks from another."""
        store = str(tmp_path / "s")
        mix = get_mix("c1_0")
        plan_a = RunPlan(n_accesses=1_000, target_instructions=10_000,
                         warmup_instructions=0, seed=1, cc_probs=(0.0,))
        plan_b = RunPlan(n_accesses=1_000, target_instructions=10_000,
                         warmup_instructions=0, seed=2, cc_probs=(0.0,))
        ParallelRunner(tiny_config(), plan_a, schemes=["l2p"], jobs=0, store=store).run([mix])
        with pytest.raises(EngineError):
            ParallelRunner(tiny_config(), plan_b, schemes=["l2p"], jobs=0, store=store).run([mix])


class TestProgressTap:
    """The per-task progress callback the job service journals through."""

    PLAN = RunPlan(n_accesses=1_000, target_instructions=10_000,
                   warmup_instructions=0, seed=3, cc_probs=(0.0,))

    def runner(self, store, ticks, *, schemes=("l2p", "l2s"), resume=False,
               tap=None):
        def default_tap(task_id, done, total):
            ticks.append((task_id, done, total))

        return ParallelRunner(
            tiny_config(), self.PLAN, schemes=list(schemes), jobs=0,
            store=store, resume=resume, progress=tap or default_tap,
        )

    def test_one_tick_per_task_monotonic(self, tmp_path):
        ticks = []
        runner = self.runner(str(tmp_path / "s"), ticks)
        runner.run([get_mix("c1_0")])
        assert len(ticks) == runner.tasks_total == 2  # one mix x two schemes
        assert [done for _tid, done, _tot in ticks] == list(
            range(1, runner.tasks_total + 1)
        )
        assert {tot for _tid, _done, tot in ticks} == {runner.tasks_total}
        assert sorted(tid for tid, _done, _tot in ticks) == [
            "c1_0__l2p", "c1_0__l2s",
        ]

    def test_resumed_tasks_tick_before_fresh_ones(self, tmp_path):
        store = str(tmp_path / "s")

        class Abort(Exception):
            pass

        first_tick = []

        def die_after_first(task_id, done, total):
            first_tick.append(task_id)
            raise Abort(task_id)

        with pytest.raises(Abort):
            self.runner(store, [], tap=die_after_first).run([get_mix("c1_0")])
        ticks = []
        resumed = self.runner(store, ticks, resume=True)
        resumed.run([get_mix("c1_0")])
        assert len(ticks) == resumed.tasks_total
        assert resumed.tasks_resumed == 1
        # The journaled task replays as tick #1, before any fresh compute.
        assert ticks[0][0] == first_tick[0]

    def test_raising_tap_aborts_after_current_result_is_stored(self, tmp_path):
        store = str(tmp_path / "s")

        class Abort(Exception):
            pass

        def lethal(task_id, done, total):
            raise Abort(task_id)

        with pytest.raises(Abort):
            self.runner(store, [], tap=lethal).run([get_mix("c1_0")])
        # The result that triggered the tick is already durable: the rerun
        # resumes it instead of recomputing.
        ticks = []
        rerun = self.runner(store, ticks, resume=True)
        rerun.run([get_mix("c1_0")])
        assert rerun.tasks_resumed >= 1
        assert len(ticks) == rerun.tasks_total
