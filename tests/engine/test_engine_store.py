"""Unit tests for the engine's task model and JSON result store."""

import json

import pytest

from repro.common.config import tiny_config
from repro.common.errors import EngineError
from repro.engine import ParallelRunner, ResultStore, SimTask, expand_mix_tasks
from repro.experiments.runner import RunPlan
from repro.workloads.mixes import get_mix


class TestSimTask:
    def test_task_id_plain_scheme(self):
        task = SimTask("c1_0", "C1", ("ammp",) * 4, "l2p")
        assert task.task_id == "c1_0__l2p"

    def test_task_id_cc_probability_point(self):
        task = SimTask("c1_0", "C1", ("ammp",) * 4, "cc", cc_prob=0.25)
        assert task.task_id == "c1_0__cc__p025"

    def test_mix_reconstruction(self):
        mix = get_mix("c3_1")
        task = SimTask(mix.mix_id, mix.mix_class, mix.programs, "dsr")
        assert task.mix == mix


class TestExpandMixTasks:
    def test_l2p_forced_first(self):
        tasks = expand_mix_tasks(get_mix("c1_0"), ["snug"], (0.0,))
        assert [t.scheme for t in tasks] == ["l2p", "snug"]

    def test_cc_best_expands_per_probability(self):
        tasks = expand_mix_tasks(get_mix("c1_0"), ["l2p", "cc_best"], (0.0, 0.5, 1.0))
        cc = [t for t in tasks if t.scheme == "cc"]
        assert [t.cc_prob for t in cc] == [0.0, 0.5, 1.0]
        assert len(tasks) == 4

    def test_full_scheme_list(self):
        tasks = expand_mix_tasks(
            get_mix("c1_0"), ["l2p", "l2s", "cc_best", "dsr", "snug"], (0.0, 0.5, 1.0)
        )
        assert len(tasks) == 7
        assert len({t.task_id for t in tasks}) == 7  # ids unique


class TestResultStore:
    def test_save_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize({"k": 1})
        payload = {"result": {"ipc": [0.1, 0.2]}, "task": {"scheme": "l2p"}}
        store.save("combo__l2p", payload)
        assert store.load("combo__l2p") == payload
        assert store.completed_ids() == {"combo__l2p"}

    def test_reopen_same_manifest_ok(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize({"k": 1})
        ResultStore(tmp_path / "s").initialize({"k": 1})  # no error

    def test_reopen_different_manifest_rejected(self, tmp_path):
        ResultStore(tmp_path / "s").initialize({"k": 1})
        with pytest.raises(EngineError):
            ResultStore(tmp_path / "s").initialize({"k": 2})

    def test_missing_result_raises(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize({})
        with pytest.raises(EngineError):
            store.load("nope")

    def test_corrupt_result_raises(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize({})
        (store.results_dir / "bad.json").write_text("{not json")
        with pytest.raises(EngineError):
            store.load("bad")

    def test_corrupt_result_error_names_file_and_remedy(self, tmp_path):
        """A torn task JSON (worker killed mid-write) produces an actionable
        message — the file to delete and the --resume remedy — instead of a
        bare json.JSONDecodeError."""
        store = ResultStore(tmp_path / "s")
        store.initialize({})
        path = store.results_dir / "c4_0__l2p.json"
        path.write_text('{"task": {"scheme": "l2p"}, "result": {"ipc": [0.')
        with pytest.raises(EngineError) as excinfo:
            store.load("c4_0__l2p")
        message = str(excinfo.value)
        assert str(path) in message
        assert "c4_0__l2p" in message
        assert "--resume" in message

    def test_unreadable_manifest_raises_engine_error(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize({"k": 1})
        store.manifest_path.write_text("{torn")
        with pytest.raises(EngineError, match="manifest"):
            ResultStore(tmp_path / "s").initialize({"k": 1})

    def test_half_written_tmp_not_counted_complete(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize({})
        (store.results_dir / "task.json.tmp").write_text("{}")
        assert store.completed_ids() == set()

    def test_store_files_are_sorted_json(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.initialize({"b": 2, "a": 1})
        text = (store.root / "manifest.json").read_text()
        assert json.loads(text)["a"] == 1
        assert text.index('"a"') < text.index('"b"')


class TestScenarioStamp:
    """The runner stamps the scenario identity into the store manifest."""

    def scenario(self, seed=7):
        from repro.scenario import Scenario, SystemSpec, WorkloadSpec

        return Scenario(
            name=f"stamp-{seed}",
            system=SystemSpec(scale="tiny", seed=seed),
            workload=WorkloadSpec(mixes=("c1_0",)),
            schemes=("l2p",),
            plan=RunPlan(n_accesses=1_000, target_instructions=10_000,
                         warmup_instructions=0, seed=seed, cc_probs=(0.0,)),
        )

    def runner(self, scenario, store, resume=False):
        return ParallelRunner(
            scenario.build_config(), scenario.plan, schemes=scenario.schemes,
            jobs=0, store=store, resume=resume, scenario=scenario,
        )

    def test_manifest_carries_name_and_hash(self, tmp_path):
        scenario = self.scenario()
        store = str(tmp_path / "s")
        self.runner(scenario, store).run(scenario.build_mixes())
        manifest = json.loads((tmp_path / "s" / "manifest.json").read_text())
        assert manifest["scenario"] == {
            "name": scenario.name,
            "hash": scenario.content_hash(),
        }

    def test_same_scenario_resumes(self, tmp_path):
        scenario = self.scenario()
        store = str(tmp_path / "s")
        self.runner(scenario, store).run(scenario.build_mixes())
        resumed = self.runner(scenario, store, resume=True)
        resumed.run(scenario.build_mixes())
        assert resumed.tasks_resumed == resumed.tasks_total

    def test_different_scenario_resume_refused_actionably(self, tmp_path):
        first, second = self.scenario(seed=7), self.scenario(seed=8)
        store = str(tmp_path / "s")
        self.runner(first, store).run(first.build_mixes())
        with pytest.raises(EngineError) as excinfo:
            self.runner(second, store, resume=True).run(second.build_mixes())
        message = str(excinfo.value)
        assert "stamp-7" in message and "stamp-8" in message
        assert first.content_hash()[:12] in message
        assert "fresh --store" in message

    def test_cosmetic_rename_still_resumes(self, tmp_path):
        """Only the content hash is identity: renaming a scenario (or moving
        between the flag and file spellings) must not orphan a store."""
        import dataclasses

        scenario = self.scenario()
        renamed = dataclasses.replace(scenario, name="other-name")
        assert renamed.content_hash() == scenario.content_hash()
        store = str(tmp_path / "s")
        self.runner(scenario, store).run(scenario.build_mixes())
        resumed = self.runner(renamed, store, resume=True)
        resumed.run(renamed.build_mixes())
        assert resumed.tasks_resumed == resumed.tasks_total

    def test_unstamped_store_refused_by_stamped_run(self, tmp_path):
        """A pre-scenario (API-driven) store mismatches a stamped run — the
        silent-merge hole the stamp closes."""
        scenario = self.scenario()
        store = str(tmp_path / "s")
        ParallelRunner(
            scenario.build_config(), scenario.plan, schemes=scenario.schemes,
            jobs=0, store=store,
        ).run(scenario.build_mixes())
        with pytest.raises(EngineError, match="unstamped"):
            self.runner(scenario, store, resume=True).run(scenario.build_mixes())


class TestRunnerValidation:
    def test_resume_requires_store(self):
        with pytest.raises(EngineError):
            ParallelRunner(tiny_config(), RunPlan(), resume=True)

    def test_negative_jobs_rejected(self):
        with pytest.raises(EngineError):
            ParallelRunner(tiny_config(), RunPlan(), jobs=-1)

    def test_duplicate_mix_ids_in_one_run_rejected(self):
        from repro.workloads.mixes import WorkloadMix

        plan = RunPlan(n_accesses=1_000, target_instructions=10_000,
                       warmup_instructions=0, seed=1, cc_probs=(0.0,))
        mix_a = WorkloadMix("custom", "custom", ("ammp", "applu", "apsi", "art"))
        mix_b = WorkloadMix("custom", "custom", ("vpr", "twolf", "swim", "mgrid"))
        with pytest.raises(EngineError):
            ParallelRunner(tiny_config(), plan, schemes=["l2p"], jobs=0).run([mix_a, mix_b])

    def test_resume_rejects_different_custom_mix(self, tmp_path):
        """Two custom mixes share mix_id "custom": resume must not serve one
        mix's stored results for the other's programs."""
        from repro.workloads.mixes import WorkloadMix

        store = str(tmp_path / "s")
        plan = RunPlan(n_accesses=1_000, target_instructions=10_000,
                       warmup_instructions=0, seed=1, cc_probs=(0.0,))
        mix_a = WorkloadMix("custom", "custom", ("ammp", "applu", "apsi", "art"))
        mix_b = WorkloadMix("custom", "custom", ("vpr", "twolf", "swim", "mgrid"))
        ParallelRunner(tiny_config(), plan, schemes=["l2p"], jobs=0, store=store).run([mix_a])
        with pytest.raises(EngineError):
            ParallelRunner(
                tiny_config(), plan, schemes=["l2p"], jobs=0, store=store, resume=True
            ).run([mix_b])

    def test_mismatched_plan_rejected_on_reuse(self, tmp_path):
        """A store created under one plan refuses tasks from another."""
        store = str(tmp_path / "s")
        mix = get_mix("c1_0")
        plan_a = RunPlan(n_accesses=1_000, target_instructions=10_000,
                         warmup_instructions=0, seed=1, cc_probs=(0.0,))
        plan_b = RunPlan(n_accesses=1_000, target_instructions=10_000,
                         warmup_instructions=0, seed=2, cc_probs=(0.0,))
        ParallelRunner(tiny_config(), plan_a, schemes=["l2p"], jobs=0, store=store).run([mix])
        with pytest.raises(EngineError):
            ParallelRunner(tiny_config(), plan_b, schemes=["l2p"], jobs=0, store=store).run([mix])
