"""Backend-conformance suite: every execution backend, one contract.

Each registered backend (inline, process pool, socket) must merge to
``ComboResult`` s **byte-identical** to the serial ``run_combo`` output —
including when resuming a partially-completed store — and the socket
backend must additionally survive a worker dying mid-chunk without losing
or duplicating a task.  A new backend added to
``repro.engine.backends.BACKENDS`` gets held to the same bar by adding one
factory here.

``REPRO_SIM_CORE`` (default ``auto``) forces every plan in this file onto
one stepping loop — CI's backend-conformance matrix re-runs the suite with
``batch`` and ``reference``, holding each loop to the same byte-identical
merge contract on every backend.
"""

from __future__ import annotations

import json
import os
import socket as socketlib
import threading

import pytest

from repro.common.config import tiny_config
from repro.common.errors import AuthError, EngineError
from repro.engine import ParallelRunner
from repro.engine.backends import (
    BACKENDS,
    InlineBackend,
    ProcessPoolBackend,
    SocketBackend,
    make_backend,
    run_worker,
)
from repro.engine.backends.socket import (
    PROTOCOL_VERSION,
    recv_msg,
    send_hello,
    send_msg,
)
from repro.experiments.runner import RunPlan, run_combo
from repro.workloads.mixes import get_mix

MIXES = [get_mix("c5_0"), get_mix("c5_1")]

SIM_CORE = os.environ.get("REPRO_SIM_CORE", "auto")


def small_plan() -> RunPlan:
    return RunPlan(
        n_accesses=1_500,
        target_instructions=25_000,
        warmup_instructions=15_000,
        seed=5,
        cc_probs=(0.0, 1.0),
        sim_core=SIM_CORE,
    )


def fingerprint(combo) -> str:
    return json.dumps(
        {
            "mix_id": combo.mix_id,
            "mix_class": combo.mix_class,
            "cc_best_prob": combo.cc_best_prob,
            "metrics": combo.metrics,
            "results": {name: res.to_dict() for name, res in combo.results.items()},
        },
        sort_keys=True,
    )


@pytest.fixture(scope="module")
def serial_fingerprints() -> list:
    config, plan = tiny_config(seed=7), small_plan()
    return [fingerprint(run_combo(m, config, plan)) for m in MIXES]


class _SocketHarness:
    """A bound SocketBackend plus worker threads that tear down with it."""

    def __init__(self, n_workers: int = 2) -> None:
        self.backend = SocketBackend(heartbeat_timeout=15.0, worker_wait=30.0)
        host, port = self.backend.bind()
        self.threads = [
            threading.Thread(target=run_worker, args=(host, port), daemon=True)
            for _ in range(n_workers)
        ]
        for t in self.threads:
            t.start()

    def join(self) -> None:
        for t in self.threads:
            t.join(timeout=15)
        assert not any(t.is_alive() for t in self.threads), "worker failed to shut down"


def _run(backend_kind: str, *, store=None, resume=False):
    """Build a runner for *backend_kind* plus an optional teardown callable."""
    config, plan = tiny_config(seed=7), small_plan()
    if backend_kind == "socket":
        harness = _SocketHarness()
        runner = ParallelRunner(
            config, plan, jobs=2, store=store, resume=resume, backend=harness.backend
        )
        return runner, harness.join
    if backend_kind == "process":
        backend = ProcessPoolBackend(2)
    else:
        backend = InlineBackend()
    runner = ParallelRunner(
        config, plan, jobs=2, store=store, resume=resume, backend=backend
    )
    return runner, lambda: None


BACKEND_KINDS = ["inline", "process", "socket"]


class TestConformance:
    def test_all_backends_registered(self):
        assert set(BACKEND_KINDS) == set(BACKENDS)

    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_merge_bit_identical_to_serial(self, kind, serial_fingerprints):
        runner, teardown = _run(kind)
        combos = runner.run(MIXES)
        teardown()
        assert [fingerprint(c) for c in combos] == serial_fingerprints
        assert runner.tasks_total == 12  # 2 mixes x (l2p, l2s, 2x cc, dsr, snug)
        assert runner.backend.name == kind

    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_snug_monitor_plan_bit_identical_across_backends(self, kind):
        """Streaming-monitor runs (plan.snug_monitor) are a plan property:
        every backend's workers attach the same online monitor and merge
        bit-identically to the serial path."""
        config = tiny_config(seed=7)
        plan = RunPlan(
            n_accesses=1_500,
            target_instructions=25_000,
            warmup_instructions=15_000,
            seed=5,
            cc_probs=(0.0,),
            snug_monitor=True,
            sim_core=SIM_CORE,
        )
        schemes = ("l2p", "snug")
        serial = [
            fingerprint(run_combo(m, config, plan, schemes=schemes)) for m in MIXES
        ]
        if kind == "socket":
            harness = _SocketHarness()
            runner = ParallelRunner(
                config, plan, schemes=schemes, jobs=2, backend=harness.backend
            )
            teardown = harness.join
        else:
            backend = ProcessPoolBackend(2) if kind == "process" else InlineBackend()
            runner = ParallelRunner(config, plan, schemes=schemes, jobs=2, backend=backend)
            teardown = lambda: None
        combos = runner.run(MIXES)
        teardown()
        assert [fingerprint(c) for c in combos] == serial

    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_resume_mid_sweep_bit_identical(self, kind, tmp_path, serial_fingerprints):
        """Drop two finished tasks from a completed store; resuming on every
        backend recomputes exactly those and merges identically."""
        store = str(tmp_path / "store")
        config, plan = tiny_config(seed=7), small_plan()
        first = ParallelRunner(config, plan, jobs=0, store=store)
        first.run(MIXES)
        # The runner closed the store after run(); discard() reopens it,
        # tombstones the two tasks, and close() makes that durable.
        for task_id in ("c5_0__l2s", "c5_1__cc__p100"):
            first.store.discard(task_id)
        first.store.close()

        runner, teardown = _run(kind, store=store, resume=True)
        combos = runner.run(MIXES)
        teardown()
        assert [fingerprint(c) for c in combos] == serial_fingerprints
        assert runner.tasks_run == 2
        assert runner.tasks_resumed == runner.tasks_total - 2

    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_trace_cache_round_trip_identical(self, kind, tmp_path, serial_fingerprints):
        """A cold-then-warm shared trace cache changes nothing in the merge."""
        cache = str(tmp_path / "traces")
        config, plan = tiny_config(seed=7), small_plan()
        if kind == "socket":
            # Workers receive the coordinator's cache root with each chunk.
            harness = _SocketHarness()
            harness.backend.cache_root = cache
            cold = ParallelRunner(config, plan, jobs=2, backend=harness.backend)
            combos = cold.run(MIXES)
            harness.join()
            harness2 = _SocketHarness()
            harness2.backend.cache_root = cache
            warm = ParallelRunner(config, plan, jobs=2, backend=harness2.backend)
            combos_warm = warm.run(MIXES)
            harness2.join()
        else:
            cold = ParallelRunner(
                config, plan, jobs=2, backend=make_backend(kind, jobs=2, cache_root=cache)
            )
            combos = cold.run(MIXES)
            warm = ParallelRunner(
                config, plan, jobs=2, backend=make_backend(kind, jobs=2, cache_root=cache)
            )
            combos_warm = warm.run(MIXES)
        assert [fingerprint(c) for c in combos] == serial_fingerprints
        assert [fingerprint(c) for c in combos_warm] == serial_fingerprints


class TestSocketEncryption:
    def test_encrypted_sweep_bit_identical(self, serial_fingerprints):
        """With a real shared secret both ends negotiate a payload cipher
        and the merge stays bit-identical — encryption is invisible to the
        determinism contract."""
        backend = SocketBackend(
            heartbeat_timeout=15.0, worker_wait=30.0, secret="e2e-test-secret"
        )
        host, port = backend.bind()
        threads = [
            threading.Thread(
                target=run_worker,
                args=(host, port),
                kwargs={"secret": "e2e-test-secret"},
                daemon=True,
            )
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        config, plan = tiny_config(seed=7), small_plan()
        runner = ParallelRunner(config, plan, jobs=2, backend=backend)
        combos = runner.run(MIXES)
        for t in threads:
            t.join(timeout=15)
        assert not any(t.is_alive() for t in threads)
        assert [fingerprint(c) for c in combos] == serial_fingerprints
        # The channel really negotiated a cipher (not silently plaintext).
        assert backend.cipher_name in ("aes-gcm", "hmac-ctr")

    def test_plaintext_worker_refused_by_encrypting_coordinator(
        self, serial_fingerprints
    ):
        """A worker that offers no ciphers (a hypothetical stripped build)
        is turned away when the coordinator holds a real secret — no
        silent downgrade to plaintext results — while a capable worker
        still completes the sweep."""
        secret = "e2e-test-secret"
        backend = SocketBackend(
            heartbeat_timeout=10.0, worker_wait=30.0, secret=secret
        )
        host, port = backend.bind()
        rejection: list = []

        def plaintext_peer():
            sock = socketlib.create_connection((host, port), timeout=10)
            try:
                send_hello(sock, "plain", secret, ciphers=[])
                try:
                    recv_msg(sock, secret)
                    rejection.append("plaintext peer was not rejected")
                except AuthError as exc:
                    rejection.append(str(exc))
            finally:
                sock.close()

        peer = threading.Thread(target=plaintext_peer, daemon=True)
        peer.start()
        good = threading.Thread(
            target=run_worker, args=(host, port),
            kwargs={"secret": secret}, daemon=True,
        )
        good.start()

        config, plan = tiny_config(seed=7), small_plan()
        runner = ParallelRunner(config, plan, jobs=2, backend=backend)
        combos = runner.run(MIXES)
        peer.join(timeout=15)
        good.join(timeout=15)
        assert [fingerprint(c) for c in combos] == serial_fingerprints
        assert rejection and "encrypted result payloads" in rejection[0]
        assert backend.workers_seen == 1  # the plaintext peer never counted


class TestSocketFaults:
    def test_killed_worker_requeues_chunk(self, serial_fingerprints):
        """A worker that dies after claiming a chunk neither loses nor
        duplicates tasks: the chunk is requeued to a surviving worker and
        the merge stays bit-identical."""
        backend = SocketBackend(heartbeat_timeout=10.0, worker_wait=30.0)
        host, port = backend.bind()
        claimed = threading.Event()

        def doomed_worker():
            """Speaks just enough protocol to claim a chunk, then dies."""
            sock = socketlib.create_connection((host, port), timeout=10)
            try:
                send_hello(sock, "doomed")
                welcome = recv_msg(sock)
                assert welcome and welcome["type"] == "welcome"
                send_msg(sock, {"type": "ready"})
                msg = recv_msg(sock)
                assert msg and msg["type"] == "chunk"
            finally:
                claimed.set()
                sock.close()  # dies without returning a result

        doomed = threading.Thread(target=doomed_worker, daemon=True)
        doomed.start()

        def healthy_worker():
            claimed.wait(timeout=15)  # let the doomed worker claim first
            run_worker(host, port)

        healthy = threading.Thread(target=healthy_worker, daemon=True)
        healthy.start()

        config, plan = tiny_config(seed=7), small_plan()
        runner = ParallelRunner(config, plan, jobs=2, backend=backend)
        combos = runner.run(MIXES)
        doomed.join(timeout=15)
        healthy.join(timeout=15)
        assert not healthy.is_alive()
        assert [fingerprint(c) for c in combos] == serial_fingerprints
        assert runner.tasks_run == runner.tasks_total  # nothing lost

    def test_no_workers_raises_instead_of_hanging(self):
        backend = SocketBackend(worker_wait=1.0)
        config, plan = tiny_config(seed=7), small_plan()
        runner = ParallelRunner(config, plan, jobs=2, backend=backend)
        with pytest.raises(EngineError, match="no live workers"):
            runner.run([MIXES[0]])

    def test_incompatible_hello_is_rejected(self):
        """Stale-protocol peers (v1 framing *and* MAC'd-but-wrong-version)
        get an actionable rejection, a garbage peer gets silence, and real
        workers still complete the sweep."""
        backend = SocketBackend(heartbeat_timeout=10.0, worker_wait=30.0)
        host, port = backend.bind()
        failures: list = []

        def legacy_peer():
            """A protocol-v1 worker: un-MAC'd length+JSON hello framing."""
            import json as jsonlib
            import struct

            sock = socketlib.create_connection((host, port), timeout=10)
            try:
                body = jsonlib.dumps({"type": "hello", "worker": "stale",
                                      "version": 1}).encode()
                sock.sendall(struct.pack(">I", len(body)) + body)
                try:
                    recv_msg(sock)
                    failures.append("legacy peer was not rejected")
                except AuthError as exc:
                    if "stale protocol" not in str(exc):
                        failures.append(f"unhelpful legacy rejection: {exc}")
                except Exception as exc:  # noqa: BLE001 - recorded for main thread
                    failures.append(f"legacy peer: {exc!r}")
            finally:
                sock.close()

        def stale_peer():
            """Current framing, future version number: the welcome-side gate."""
            sock = socketlib.create_connection((host, port), timeout=10)
            try:
                send_hello(sock, "stale", version=PROTOCOL_VERSION + 1)
                try:
                    recv_msg(sock)
                    failures.append("stale peer was not rejected")
                except AuthError as exc:
                    if "protocol version" not in str(exc):
                        failures.append(f"unhelpful stale rejection: {exc}")
                except Exception as exc:  # noqa: BLE001
                    failures.append(f"stale peer: {exc!r}")
            finally:
                sock.close()

        def garbage_peer():
            """A non-protocol client (e.g. a stray HTTP probe) must be
            dropped by the handshake size cap without reaching the
            unpickler — and without leaking a protocol error frame."""
            sock = socketlib.create_connection((host, port), timeout=10)
            try:
                sock.sendall(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
                sock.settimeout(10)
                try:
                    data = sock.recv(1)
                except ConnectionResetError:
                    data = b""  # hard reset: unread bytes at close
                if data != b"":
                    failures.append(f"garbage peer got bytes back: {data!r}")
            finally:
                sock.close()

        peers = [
            threading.Thread(target=target, daemon=True)
            for target in (legacy_peer, stale_peer, garbage_peer)
        ]
        for peer in peers:
            peer.start()
        good = threading.Thread(target=run_worker, args=(host, port), daemon=True)
        good.start()

        config, plan = tiny_config(seed=7), small_plan()
        runner = ParallelRunner(config, plan, jobs=2, backend=backend)
        [combo] = runner.run([MIXES[0]])
        for peer in peers:
            peer.join(timeout=15)
        good.join(timeout=15)
        assert failures == []
        serial = fingerprint(run_combo(MIXES[0], tiny_config(seed=7), small_plan()))
        assert fingerprint(combo) == serial
        assert backend.workers_seen == 1  # no bad peer ever registered


class TestTaskFailurePropagation:
    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_task_error_raises_after_siblings_persist(self, kind, tmp_path):
        """A bad scheme name fails the run on every backend, but the chunk
        siblings that finished before it are already in the store (resume
        granularity).  jobs=1 keeps the mix in one chunk so l2p
        deterministically precedes the failing task."""
        store = str(tmp_path / "store")
        config, plan = tiny_config(seed=7), small_plan()
        teardown = lambda: None
        if kind == "socket":
            harness = _SocketHarness(n_workers=1)
            backend, teardown = harness.backend, harness.join
        elif kind == "process":
            backend = ProcessPoolBackend(1)
        else:
            backend = InlineBackend()
        from repro.common.errors import ConfigError

        runner = ParallelRunner(
            config, plan, jobs=1, store=store, backend=backend,
            schemes=["l2p", "definitely_not_a_scheme"],
        )
        try:
            # The *original* task exception must surface — on the socket
            # backend too, even though the failing chunk is the last (and
            # only) one — not a downstream KeyError from a silently
            # incomplete merge.
            with pytest.raises(ConfigError, match="unknown scheme"):
                runner.run([MIXES[0]])
        finally:
            teardown()
        assert "c5_0__l2p" in runner.store.completed_ids()
