"""Determinism contract of the parallel engine.

The same (mix, seed, plan, config) must produce **byte-identical** results
through every execution strategy: the serial runner, the in-process task
loop, and process pools of 1, 2 and 4 workers — with and without the JSON
store in the loop.  Fingerprints are canonical JSON dumps, so "identical"
means identical down to the last float bit.
"""

import json

import pytest

from repro.common.config import tiny_config
from repro.engine import ParallelRunner
from repro.experiments.runner import RunPlan, run_combo
from repro.workloads.mixes import get_mix

MIX = get_mix("c4_0")


def small_plan() -> RunPlan:
    return RunPlan(
        n_accesses=2_000,
        target_instructions=30_000,
        warmup_instructions=20_000,
        seed=11,
        cc_probs=(0.0, 0.5, 1.0),
    )


def fingerprint(combo) -> str:
    return json.dumps(
        {
            "mix_id": combo.mix_id,
            "mix_class": combo.mix_class,
            "cc_best_prob": combo.cc_best_prob,
            "metrics": combo.metrics,
            "results": {name: res.to_dict() for name, res in combo.results.items()},
        },
        sort_keys=True,
    )


@pytest.fixture(scope="module")
def serial_fingerprint() -> str:
    return fingerprint(run_combo(MIX, tiny_config(seed=7), small_plan()))


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_worker_pool_bit_identical(self, jobs, serial_fingerprint):
        runner = ParallelRunner(tiny_config(seed=7), small_plan(), jobs=jobs)
        [combo] = runner.run([MIX])
        assert fingerprint(combo) == serial_fingerprint
        assert runner.tasks_total == 7  # l2p, l2s, 3x cc, dsr, snug

    def test_in_process_bit_identical(self, serial_fingerprint):
        runner = ParallelRunner(tiny_config(seed=7), small_plan(), jobs=0)
        [combo] = runner.run([MIX])
        assert fingerprint(combo) == serial_fingerprint

    def test_store_round_trip_bit_identical(self, tmp_path, serial_fingerprint):
        """Results that pass through the JSON store stay bit-identical."""
        store = str(tmp_path / "store")
        r1 = ParallelRunner(tiny_config(seed=7), small_plan(), jobs=2, store=store)
        [c1] = r1.run([MIX])
        assert fingerprint(c1) == serial_fingerprint

        resumed = ParallelRunner(
            tiny_config(seed=7), small_plan(), jobs=2, store=store, resume=True
        )
        [c2] = resumed.run([MIX])
        assert fingerprint(c2) == serial_fingerprint
        assert resumed.tasks_resumed == resumed.tasks_total
        assert resumed.tasks_run == 0


class TestResume:
    def test_partial_store_only_runs_remainder(self, tmp_path):
        """Pre-seeding some results leaves only the rest to simulate."""
        store = str(tmp_path / "store")
        config, plan = tiny_config(seed=7), small_plan()

        first = ParallelRunner(config, plan, jobs=0, store=store)
        [combo_full] = first.run([MIX])

        # Tombstone two task results; resume must recompute exactly those.
        removed = 0
        for task_id in ("c4_0__l2s", "c4_0__cc__p050"):
            first.store.discard(task_id)
            removed += 1
        first.store.close()
        resumed = ParallelRunner(config, plan, jobs=0, store=store, resume=True)
        [combo_resumed] = resumed.run([MIX])
        assert resumed.tasks_run == removed
        assert resumed.tasks_resumed == resumed.tasks_total - removed
        assert fingerprint(combo_resumed) == fingerprint(combo_full)

    def test_resume_does_not_rewrite_completed_results(self, tmp_path):
        store = str(tmp_path / "store")
        config, plan = tiny_config(seed=7), small_plan()
        first = ParallelRunner(config, plan, jobs=0, store=store)
        first.run([MIX])

        def segment_state():
            return {
                str(p.relative_to(tmp_path)): p.read_bytes()
                for p in sorted((tmp_path / "store").glob("shards/*/seg-*.seg"))
            }

        before = segment_state()
        resumed = ParallelRunner(config, plan, jobs=0, store=store, resume=True)
        resumed.run([MIX])
        # A full resume appends nothing: every segment is byte-identical.
        assert segment_state() == before
