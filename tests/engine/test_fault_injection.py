"""Seeded fault-matrix suite: the socket backend under injected failures.

Every schedule here — worker death mid-result-send, torn frames, dropped
and duplicated deliveries, a coordinator crash with spool replay into the
restarted coordinator — must merge to ``ComboResult`` s **byte-identical**
to the serial/inline run.  The fault schedules are seed-driven
(:mod:`repro.engine.backends.faults`), so a failing seed reproduces
exactly; CI sweeps several seeds via ``$REPRO_FAULT_SEEDS``.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.common.config import tiny_config
from repro.common.errors import AuthError, EngineError
from repro.engine import ParallelRunner
from repro.engine.backends import SocketBackend, run_worker
from repro.engine.backends.faults import FaultInjector, FaultSpec
from repro.experiments.runner import RunPlan, run_combo
from repro.workloads.mixes import get_mix

MIXES = [get_mix("c5_0"), get_mix("c5_1")]

#: Injection seeds; CI's fault-matrix job overrides this per matrix entry.
SEEDS = [int(s) for s in os.environ.get("REPRO_FAULT_SEEDS", "1 2 3").split()]


def small_plan() -> RunPlan:
    return RunPlan(
        n_accesses=1_500,
        target_instructions=25_000,
        warmup_instructions=15_000,
        seed=5,
        cc_probs=(0.0, 1.0),
    )


def fingerprint(combo) -> str:
    return json.dumps(
        {
            "mix_id": combo.mix_id,
            "mix_class": combo.mix_class,
            "cc_best_prob": combo.cc_best_prob,
            "metrics": combo.metrics,
            "results": {name: res.to_dict() for name, res in combo.results.items()},
        },
        sort_keys=True,
    )


@pytest.fixture(scope="module")
def serial_fingerprints() -> list:
    config, plan = tiny_config(seed=7), small_plan()
    return [fingerprint(run_combo(m, config, plan)) for m in MIXES]


def _faulty_worker(host, port, *, injector, spool_dir, errors, stats):
    """run_worker wrapped so thread exceptions surface in the main thread."""
    try:
        run_worker(
            host,
            port,
            faults=injector,
            spool_dir=spool_dir,
            connect_timeout=10.0,
            ack_timeout=3.0,
            stats=stats,
        )
    except Exception as exc:  # noqa: BLE001 - reported by the test body
        errors.append(exc)


class TestFaultMatrix:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_faulted_sweep_bit_identical(self, seed, tmp_path, serial_fingerprints):
        """Drops, duplicates, torn frames, mid-send deaths and delays on a
        seeded schedule: requeue + dedupe + spool replay absorb all of it
        and the merge stays byte-identical to the serial run."""
        spec = FaultSpec(
            seed=seed, drop=0.06, dup=0.08, torn=0.05, die=0.03,
            delay=0.05, delay_s=0.002,
        )
        backend = SocketBackend(heartbeat_timeout=6.0, worker_wait=30.0)
        host, port = backend.bind()
        errors: list = []
        injectors = [
            FaultInjector(spec),
            FaultInjector(FaultSpec(
                seed=seed + 1000, drop=0.06, dup=0.08, torn=0.05, die=0.03,
                delay=0.05, delay_s=0.002,
            )),
        ]
        stats = [dict(), dict()]
        workers = [
            threading.Thread(
                target=_faulty_worker,
                args=(host, port),
                kwargs=dict(
                    injector=injectors[i],
                    spool_dir=str(tmp_path / f"spool{i}"),
                    errors=errors,
                    stats=stats[i],
                ),
                daemon=True,
            )
            for i in range(2)
        ]
        for worker in workers:
            worker.start()

        config, plan = tiny_config(seed=7), small_plan()
        # jobs=4 splits each mix into several cost-balanced chunks, giving
        # the schedule more frames (and the scheduler more work) to fault.
        runner = ParallelRunner(config, plan, jobs=4, backend=backend)
        combos = runner.run(MIXES)
        for worker in workers:
            worker.join(timeout=60)
        assert not any(w.is_alive() for w in workers), "faulted worker hung"
        assert errors == []
        assert [fingerprint(c) for c in combos] == serial_fingerprints
        assert runner.tasks_run == runner.tasks_total  # nothing lost
        fired = sum(
            count
            for injector in injectors
            for action, count in injector.counts.items()
            if action != "send"
        )
        assert fired > 0, "fault schedule never fired; the test exercised nothing"

    def test_coordinator_crash_spool_replay_and_restart(
        self, tmp_path, serial_fingerprints
    ):
        """A coordinator crash mid-sweep severs the workers; the restarted
        coordinator (same port, ``--resume`` store) gets the worker's
        journaled in-flight result replayed from its spool, and the final
        merge is byte-identical with nothing lost or duplicated."""
        store = str(tmp_path / "store")
        spool = str(tmp_path / "spool")
        config, plan = tiny_config(seed=7), small_plan()
        backend = SocketBackend(
            heartbeat_timeout=10.0, worker_wait=30.0, faults="crash=1"
        )
        host, port = backend.bind()
        errors: list = []
        stats: dict = {}

        def durable_worker():
            try:
                run_worker(
                    host,
                    port,
                    spool_dir=spool,
                    reconnect=True,
                    connect_timeout=30.0,
                    ack_timeout=3.0,
                    stats=stats,
                )
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        worker = threading.Thread(target=durable_worker, daemon=True)
        worker.start()

        runner = ParallelRunner(config, plan, jobs=4, store=store, backend=backend)
        with pytest.raises(EngineError, match="injected coordinator crash"):
            runner.run(MIXES)

        # Restart on the SAME port while the worker is inside its reconnect
        # window; --resume picks up the store the crashed run persisted.
        backend2 = SocketBackend(
            host=host, port=port, heartbeat_timeout=10.0, worker_wait=30.0
        )
        backend2.bind()
        runner2 = ParallelRunner(
            config, plan, jobs=4, store=store, resume=True, backend=backend2
        )
        combos = runner2.run(MIXES)
        worker.join(timeout=60)
        assert not worker.is_alive(), "worker never exited after the restart"
        assert errors == []
        assert [fingerprint(c) for c in combos] == serial_fingerprints
        # The worker observed the crash as a severed connection and re-dialed.
        # (Whether its spool had an un-acked entry to replay at that instant
        # is a scheduling race; the deterministic replay guarantee is pinned
        # by test_unacked_spooled_result_replays_without_resimulation.)
        assert stats.get("reconnects", 0) >= 1
        # The spool is drained: every journaled entry was acknowledged.
        sweep_dirs = list(os.scandir(spool)) if os.path.isdir(spool) else []
        leftover = [e for d in sweep_dirs for e in os.scandir(d.path)]
        assert leftover == []

    def test_unacked_spooled_result_replays_without_resimulation(
        self, tmp_path, serial_fingerprints
    ):
        """A journaled-but-never-acknowledged result — exactly what a
        coordinator crash between result and ack leaves behind — is replayed
        on the worker's next connect and absorbed instead of re-simulated,
        even though the new coordinator grouped the tasks differently."""
        from repro.engine.backends.socket import ResultSpool, _sweep_id
        from repro.engine.execution import execute_task_chunk
        from repro.engine.tasks import expand_mix_tasks

        config, plan = tiny_config(seed=7), small_plan()
        backend = SocketBackend(heartbeat_timeout=10.0, worker_wait=30.0)
        host, port = backend.bind()
        runner = ParallelRunner(config, plan, jobs=4, backend=backend)

        # Journal one whole mix's results as a dead coordinator would have
        # left them: computed, spooled, never acked.
        tasks = [
            t for m in MIXES for t in expand_mix_tasks(m, runner.schemes, plan.cc_probs)
        ]
        mix0_tasks = [t for t in tasks if t.mix_id == MIXES[0].mix_id]
        results, error, exec_stats = execute_task_chunk(config, plan, mix0_tasks)
        assert error is None
        spool_dir = tmp_path / "spool"
        ResultSpool(spool_dir).put(
            _sweep_id(config, plan),
            "stale-partition-chunk",
            {
                "chunk_id": "stale-partition-chunk",
                "task_ids": [t.task_id for t in mix0_tasks],
                "results": results,
                "stats": exec_stats,
            },
        )
        chunks = runner._chunk(tasks)
        covered = [
            c for c in chunks if all(t.mix_id == MIXES[0].mix_id for t in c)
        ]
        assert covered, "the journaled mix should cover at least one chunk"

        errors: list = []
        stats: dict = {}
        worker = threading.Thread(
            target=_faulty_worker,
            args=(host, port),
            kwargs=dict(
                injector=None, spool_dir=str(spool_dir), errors=errors, stats=stats
            ),
            daemon=True,
        )
        worker.start()
        combos = runner.run(MIXES)
        worker.join(timeout=60)
        assert not worker.is_alive(), "worker hung"
        assert errors == []
        assert [fingerprint(c) for c in combos] == serial_fingerprints
        assert stats.get("replayed") == 1
        # The absorbed chunks were never re-dispatched: the worker computed
        # exactly the chunks the replay did not cover.
        assert stats.get("computed") == len(chunks) - len(covered)
        # And the replayed entry was acknowledged and deleted.
        sweep_dirs = list(os.scandir(spool_dir)) if os.path.isdir(spool_dir) else []
        leftover = [e for d in sweep_dirs for e in os.scandir(d.path)]
        assert leftover == []


class TestAuthRejection:
    def test_wrong_secret_worker_rejected_actionably(self, serial_fingerprints):
        """A worker with the wrong shared secret is refused with a message
        naming the fix, never claims work, and the sweep completes through
        the correctly-authenticated worker."""
        backend = SocketBackend(
            heartbeat_timeout=10.0, worker_wait=30.0, secret="right-secret"
        )
        host, port = backend.bind()
        rejections: list = []
        errors: list = []

        def impostor():
            try:
                run_worker(host, port, secret="wrong-secret", connect_timeout=10.0)
                errors.append("impostor worker was not rejected")
            except AuthError as exc:
                rejections.append(str(exc))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def legit():
            try:
                run_worker(host, port, secret="right-secret", connect_timeout=10.0)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=impostor, daemon=True),
            threading.Thread(target=legit, daemon=True),
        ]
        for t in threads:
            t.start()
        config, plan = tiny_config(seed=7), small_plan()
        runner = ParallelRunner(config, plan, jobs=2, backend=backend)
        [combo] = runner.run([MIXES[0]])
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        assert rejections, "wrong-secret worker saw no rejection"
        assert "shared-secret mismatch" in rejections[0]
        assert "REPRO_ENGINE_SECRET" in rejections[0]  # the actionable part
        assert backend.workers_seen == 1  # the impostor never registered
        serial = fingerprint(run_combo(MIXES[0], tiny_config(seed=7), small_plan()))
        assert fingerprint(combo) == serial
